//! 2-D convolution via im2col.

use super::{Layer, Param};
use crate::tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};

/// 2-D convolution over `[batch, in_c, h, w]` inputs.
///
/// The implementation lowers each sample to an im2col matrix of shape
/// `[in_c·kh·kw, oh·ow]` and uses a single matrix multiplication per sample,
/// which is the standard CPU strategy and keeps the backward pass to two
/// more matmuls plus a col2im scatter.
///
/// # Examples
///
/// ```
/// use minidnn::layers::{Conv2d, Layer};
/// use minidnn::tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 0);
/// let y = conv.forward(&Tensor::randn(&[2, 3, 8, 8], 1), true);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cache: Option<ConvCache>,
}

#[derive(Debug)]
struct ConvCache {
    cols: Vec<Tensor>,
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Create a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel` or `stride`
    /// is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, stride: usize, padding: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0, "conv dimensions must be positive");
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_channels, fan_in], fan_in, seed), "conv.weight"),
            bias: Param::new(Tensor::zeros(&[out_channels]), "conv.bias"),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: None,
        }
    }

    /// Output spatial size for an input of the given height/width.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let hp = h + 2 * self.padding;
        let wp = w + 2 * self.padding;
        assert!(hp >= self.kernel && wp >= self.kernel, "input {h}x{w} too small for kernel {}", self.kernel);
        ((hp - self.kernel) / self.stride + 1, (wp - self.kernel) / self.stride + 1)
    }

    /// Lower one sample `[in_c, h, w]` to `[in_c·k·k, oh·ow]`.
    fn im2col(&self, x: &[f32], h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let k = self.kernel;
        let rows = self.in_channels * k * k;
        let mut out = vec![0.0f32; rows * oh * ow];
        for c in 0..self.in_channels {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oi in 0..oh {
                        let ii = (oi * self.stride + ki) as isize - self.padding as isize;
                        for oj in 0..ow {
                            let jj = (oj * self.stride + kj) as isize - self.padding as isize;
                            let v = if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                x[(c * h + ii as usize) * w + jj as usize]
                            } else {
                                0.0
                            };
                            out[row * (oh * ow) + oi * ow + oj] = v;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[rows, oh * ow]).expect("im2col shape")
    }

    /// Scatter a `[in_c·k·k, oh·ow]` gradient back to `[in_c, h, w]`.
    fn col2im(&self, col: &Tensor, h: usize, w: usize, oh: usize, ow: usize, out: &mut [f32]) {
        let k = self.kernel;
        let cd = col.data();
        for c in 0..self.in_channels {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oi in 0..oh {
                        let ii = (oi * self.stride + ki) as isize - self.padding as isize;
                        for oj in 0..ow {
                            let jj = (oj * self.stride + kj) as isize - self.padding as isize;
                            if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                out[(c * h + ii as usize) * w + jj as usize] += cd[row * (oh * ow) + oi * ow + oj];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv input must be [batch, c, h, w], got {shape:?}");
        assert_eq!(shape[1], self.in_channels, "conv channel mismatch");
        let (batch, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w);
        let sample = self.in_channels * h * w;
        let mut out = Vec::with_capacity(batch * self.out_channels * oh * ow);
        let mut cols = Vec::with_capacity(batch);
        for b in 0..batch {
            let col = self.im2col(&x.data()[b * sample..(b + 1) * sample], h, w, oh, ow);
            let y = matmul(&self.weight.value, &col); // [out_c, oh*ow]
            for oc in 0..self.out_channels {
                let bias = self.bias.value.data()[oc];
                for s in 0..oh * ow {
                    out.push(y.data()[oc * oh * ow + s] + bias);
                }
            }
            cols.push(col);
        }
        self.cache = Some(ConvCache { cols, in_shape: shape.to_vec(), out_hw: (oh, ow) });
        Tensor::from_vec(out, &[batch, self.out_channels, oh, ow]).expect("conv output shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let (oh, ow) = cache.out_hw;
        let batch = cache.in_shape[0];
        let (h, w) = (cache.in_shape[2], cache.in_shape[3]);
        assert_eq!(grad_out.shape(), &[batch, self.out_channels, oh, ow], "conv backward shape mismatch");
        let spatial = oh * ow;
        let mut dx = vec![0.0f32; batch * self.in_channels * h * w];
        let sample = self.in_channels * h * w;
        for b in 0..batch {
            let g = Tensor::from_vec(
                grad_out.data()[b * self.out_channels * spatial..(b + 1) * self.out_channels * spatial].to_vec(),
                &[self.out_channels, spatial],
            )
            .expect("conv grad slice");
            // dW += g colᵀ ; db += Σ_spatial g ; dcol = Wᵀ g
            self.weight.grad.add_assign(&matmul_a_bt(&g, &cache.cols[b]));
            self.bias.grad.add_assign(&g.sum_rows_of_2d_transposed());
            let dcol = matmul_at_b(&self.weight.value, &g);
            self.col2im(&dcol, h, w, oh, ow, &mut dx[b * sample..(b + 1) * sample]);
        }
        Tensor::from_vec(dx, &cache.in_shape).expect("conv dx shape")
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

impl Tensor {
    /// Sum a 2-D tensor over its *columns*, producing `[rows]` — i.e. the
    /// per-output-channel bias gradient for a `[out_c, spatial]` gradient.
    fn sum_rows_of_2d_transposed(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r];
        for i in 0..r {
            out[i] = self.data()[i * c..(i + 1) * c].iter().sum();
        }
        Tensor::from_vec(out, &[r]).expect("column sum shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_with_padding() {
        let conv = Conv2d::new(1, 4, 3, 1, 1, 0);
        assert_eq!(conv.output_hw(5, 5), (5, 5));
        let conv = Conv2d::new(1, 4, 3, 2, 0, 0);
        assert_eq!(conv.output_hw(7, 7), (3, 3));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and bias 0 is the identity.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::randn(&[1, 1, 4, 4], 13);
        let y = conv.forward(&x, true);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 3x3 kernel over an all-ones 3x3 input, no padding: single
        // output = 9.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, 0);
        conv.weight.value.data_mut().fill(1.0);
        let y = conv.forward(&Tensor::ones(&[1, 1, 3, 3]), true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 9.0);
    }

    #[test]
    fn gradient_check_weight_and_input() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 17);
        let x = Tensor::randn(&[2, 2, 4, 4], 18);
        let y = conv.forward(&x, true);
        let gx = conv.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2f32;

        // Weight gradient (spot-check a handful of indices).
        let analytic = conv.weight.grad.clone();
        for idx in [0usize, 5, 11, 17] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let plus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let minus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 0.05, "w[{idx}]: {numeric} vs {}", analytic.data()[idx]);
        }

        // Input gradient (spot-check).
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (conv.forward(&xp, true).sum() - conv.forward(&xm, true).sum()) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 0.05, "x[{idx}]: {numeric} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 19);
        let x = Tensor::randn(&[3, 1, 4, 4], 20);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape()));
        // Each output channel sees batch * oh * ow unit gradients.
        for &g in conv.bias.grad.data() {
            assert_eq!(g, (3 * 4 * 4) as f32);
        }
    }
}
