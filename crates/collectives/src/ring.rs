//! Ring collectives written once against the [`Transport`] trait.
//!
//! The algorithms below never touch a socket or a channel directly — they
//! move little-endian byte frames through whichever [`Transport`] backs the
//! group (in-process crossbeam channels by default, localhost TCP via
//! [`CommGroup::tcp`]). Gradient payloads travel through the group's
//! [`Codec`] (raw `f32` frames by default) and metric gathers as `f64`
//! frames, so results are bitwise identical across backends.
//!
//! With a lossy codec the ring stays replica-consistent: after the
//! reduce-scatter phase each rank re-quantizes the chunk it owns before the
//! all-gather circulates it, so every rank forwards and keeps the same
//! bits (codecs are idempotent — see [`crate::codec`]). Broadcast and the
//! `f64` metric gathers are never compressed; only gradient reductions
//! are.

use crate::codec::{Codec, ErrorFeedback};
use crate::resilience::{CommError, CommFaultPlan, RetryPolicy};
use crate::tcp;
use crate::transport::{
    decode_f32, decode_f64, encode_f32, encode_f64, InProcessTransport, Transport, TransportKind,
};
use cannikin_telemetry::{self as telemetry, AllReduceBucket, Event, FaultInjected, FaultKind, RecoveryAction, RecoveryKind};
use rand::rngs::StdRng;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// Factory for a group of ring-connected [`Communicator`]s.
#[derive(Debug)]
pub struct CommGroup;

impl CommGroup {
    /// Create `n` communicators arranged in a ring over the in-process
    /// backend. Move each one onto its own thread.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn create(n: usize) -> Vec<Communicator> {
        Self::build(n, None)
    }

    /// Like [`CommGroup::create`], with a shared injected-failure plan:
    /// every rank's resilient collectives consult the same plan at the
    /// same sequence numbers, so injected failures stay in SPMD lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn create_faulty(n: usize, plan: CommFaultPlan) -> Vec<Communicator> {
        Self::build(n, Some(Arc::new(plan)))
    }

    fn build(n: usize, fault_plan: Option<Arc<CommFaultPlan>>) -> Vec<Communicator> {
        assert!(n > 0, "communicator group must have at least one rank");
        InProcessTransport::ring(n)
            .into_iter()
            .map(|t| Communicator::from_transport(Box::new(t), fault_plan.clone()))
            .collect()
    }

    /// Create `n` communicators connected over real localhost TCP sockets,
    /// rendezvousing at `addr` (use `127.0.0.1:0` for an ephemeral port).
    /// Returned rank-ordered; move each onto its own thread.
    ///
    /// # Errors
    ///
    /// [`CommError::Io`] / [`CommError::Timeout`] if the ring cannot form.
    pub fn tcp(addr: &str, n: usize) -> Result<Vec<Communicator>, CommError> {
        Self::tcp_with_plan(addr, n, None)
    }

    /// [`CommGroup::tcp`] with a shared injected-failure plan (the TCP
    /// analogue of [`CommGroup::create_faulty`]).
    ///
    /// # Errors
    ///
    /// As [`CommGroup::tcp`].
    pub fn tcp_faulty(addr: &str, n: usize, plan: CommFaultPlan) -> Result<Vec<Communicator>, CommError> {
        Self::tcp_with_plan(addr, n, Some(Arc::new(plan)))
    }

    fn tcp_with_plan(
        addr: &str,
        n: usize,
        fault_plan: Option<Arc<CommFaultPlan>>,
    ) -> Result<Vec<Communicator>, CommError> {
        assert!(n > 0, "communicator group must have at least one rank");
        Ok(tcp::tcp_ring(addr, n)?
            .into_iter()
            .map(|t| Communicator::from_transport(Box::new(t), fault_plan.clone()))
            .collect())
    }

    /// Backend-polymorphic factory: build the group on whichever transport
    /// `kind` names. The in-process backend cannot fail; TCP propagates
    /// setup errors.
    ///
    /// # Errors
    ///
    /// As [`CommGroup::tcp`] for the TCP backend.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_kind(
        n: usize,
        kind: &TransportKind,
        plan: Option<CommFaultPlan>,
    ) -> Result<Vec<Communicator>, CommError> {
        Self::with_options(n, kind, plan, Codec::None)
    }

    /// [`CommGroup::with_kind`] plus a gradient [`Codec`] installed on
    /// every rank (all ranks must share one codec — mixed codecs would
    /// desynchronize frame formats mid-collective).
    ///
    /// # Errors
    ///
    /// As [`CommGroup::tcp`] for the TCP backend.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_options(
        n: usize,
        kind: &TransportKind,
        plan: Option<CommFaultPlan>,
        codec: Codec,
    ) -> Result<Vec<Communicator>, CommError> {
        let plan = plan.map(Arc::new);
        let comms = match kind {
            TransportKind::InProcess => Self::build(n, plan),
            TransportKind::Tcp { rendezvous } => Self::tcp_with_plan(rendezvous, n, plan)?,
        };
        Ok(comms.into_iter().map(|c| c.with_codec(codec)).collect())
    }
}

/// One rank's endpoint in a ring-connected group.
///
/// All methods are collective: every rank of the group must call them in
/// the same order or the group deadlocks (the standard SPMD contract).
#[derive(Debug)]
pub struct Communicator {
    transport: Box<dyn Transport>,
    /// Count of *resilient* collectives issued so far — the key into the
    /// shared [`CommFaultPlan`]. Identical on every rank by the SPMD
    /// contract.
    seq: Cell<u64>,
    fault_plan: Option<Arc<CommFaultPlan>>,
    /// Wire format of gradient payloads ([`Codec::None`] = raw `f32`).
    codec: Codec,
}

impl Communicator {
    /// Wrap a transport endpoint in a communicator. This is how custom
    /// [`Transport`] implementations join the collective layer.
    pub fn from_transport(
        transport: Box<dyn Transport>,
        fault_plan: Option<Arc<CommFaultPlan>>,
    ) -> Communicator {
        Communicator { transport, seq: Cell::new(0), fault_plan, codec: Codec::None }
    }

    /// Install a gradient [`Codec`] (builder-style). Every rank of a group
    /// must use the same codec or frame formats desynchronize.
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Communicator {
        self.codec = codec;
        self
    }

    /// The gradient codec this communicator puts on the wire.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// This rank's id, `0..world_size`.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of ranks in the group.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// Cumulative bytes this rank has put on the wire (payload plus any
    /// backend framing overhead).
    pub fn bytes_sent(&self) -> u64 {
        self.transport.bytes_sent()
    }

    /// Cumulative bytes received from the wire.
    pub fn bytes_received(&self) -> u64 {
        self.transport.bytes_received()
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.transport.barrier().expect("ring peer disconnected");
    }

    fn send(&self, data: &[f32]) {
        self.transport.send(&encode_f32(data)).expect("ring peer disconnected");
    }

    fn recv(&self) -> Vec<f32> {
        let frame = self.transport.recv().expect("ring peer disconnected");
        decode_f32(&frame).expect("malformed f32 frame")
    }

    /// Send a gradient payload through the group's [`Codec`].
    fn send_grad(&self, data: &[f32]) {
        self.transport.send(&self.codec.encode(data)).expect("ring peer disconnected");
    }

    /// Receive and decode a gradient payload.
    fn recv_grad(&self) -> Vec<f32> {
        let frame = self.transport.recv().expect("ring peer disconnected");
        self.codec.decode(&frame).expect("malformed gradient frame")
    }

    fn send_f64(&self, data: &[f64]) {
        self.transport.send(&encode_f64(data)).expect("ring peer disconnected");
    }

    fn recv_f64(&self) -> Vec<f64> {
        let frame = self.transport.recv().expect("ring peer disconnected");
        decode_f64(&frame).expect("malformed f64 frame")
    }

    /// In-place sum all-reduce via ring reduce-scatter + all-gather.
    ///
    /// Every rank ends with the elementwise sum across ranks. The algorithm
    /// moves `2(n−1)/n` of the buffer per rank, the bandwidth-optimal
    /// schedule of Patarasuk & Yuan that NCCL implements.
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        let rank = self.rank();
        let chunks = ring_chunks(data.len(), n);
        // Reduce-scatter: after step s, rank r holds the running sum of
        // chunk (r - s) for s+1 ranks.
        for s in 0..n - 1 {
            let send_idx = (rank + n - s) % n;
            let recv_idx = (rank + n - s - 1) % n;
            self.send_grad(&data[chunks[send_idx].clone()]);
            let incoming = self.recv_grad();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d += v;
            }
        }
        // Re-quantize the chunk this rank owns before circulating it: the
        // local (unencoded) sum and the copies the other ranks decode must
        // be the same bits, or replicas drift apart under a lossy codec.
        if self.codec.is_lossy() {
            self.codec.quantize(&mut data[chunks[(rank + 1) % n].clone()]);
        }
        // All-gather: circulate the fully reduced chunks.
        for s in 0..n - 1 {
            let send_idx = (rank + n - s + 1) % n;
            let recv_idx = (rank + n - s) % n;
            self.send_grad(&data[chunks[send_idx].clone()]);
            let incoming = self.recv_grad();
            data[chunks[recv_idx].clone()].copy_from_slice(&incoming);
        }
    }

    /// In-place mean all-reduce: [`Communicator::all_reduce_sum`] divided by
    /// the world size — the homogeneous DDP aggregation (Eq. (2) of the
    /// paper).
    pub fn all_reduce_mean(&self, data: &mut [f32]) {
        self.all_reduce_sum(data);
        let inv = 1.0 / self.world_size() as f32;
        for v in data.iter_mut() {
            *v *= inv;
        }
    }

    /// Weighted all-reduce (Eq. (9)): every rank contributes `weight *
    /// data` and receives `Σᵢ wᵢ · dataᵢ`. With `wᵢ = bᵢ/B` this turns
    /// per-node *mean* gradients over unequal local batches into the exact
    /// global-batch mean gradient.
    pub fn weighted_all_reduce(&self, data: &mut [f32], weight: f32) {
        for v in data.iter_mut() {
            *v *= weight;
        }
        self.all_reduce_sum(data);
    }

    /// Bucketed all-reduce: reduce the buffer bucket by bucket in *reverse*
    /// bucket order (DDP reduces buckets as backpropagation produces them,
    /// i.e. from the output layers backwards). Returns the bucket ranges in
    /// the order they were reduced.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn all_reduce_buckets(&self, data: &mut [f32], buckets: usize) -> Vec<std::ops::Range<usize>> {
        let ranges = super::bucket_ranges(data.len(), buckets);
        let mut order = Vec::with_capacity(ranges.len());
        let record = telemetry::enabled();
        for (i, r) in ranges.into_iter().rev().enumerate() {
            let bucket_started = record.then(std::time::Instant::now);
            let bytes_before = record.then(|| self.transport.bytes_sent());
            self.all_reduce_sum(&mut data[r.clone()]);
            if let Some(started) = bucket_started {
                telemetry::emit(Event::AllReduceBucket(AllReduceBucket {
                    bucket: i as u32,
                    elems: r.len() as u64,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    bytes: self.transport.bytes_sent() - bytes_before.unwrap_or(0),
                }));
            }
            order.push(r);
        }
        order
    }

    /// Broadcast `data` from rank 0 to every rank (in place).
    pub fn broadcast(&self, data: &mut [f32]) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        // Pass rank 0's buffer around the ring; the last hop (into rank 0)
        // is skipped.
        if self.rank() == 0 {
            self.send(data);
        } else {
            let incoming = self.recv();
            data.copy_from_slice(&incoming[..data.len()]);
            if self.rank() + 1 < n {
                self.send(&incoming);
            }
        }
        self.barrier();
    }

    /// Gather one `f64` from every rank; the result is indexed by rank on
    /// every rank. Used for metric collection (per-node timings, gradient
    /// norms).
    pub fn all_gather_scalar(&self, value: f64) -> Vec<f64> {
        let n = self.world_size();
        if n == 1 {
            return vec![value];
        }
        let mut out = vec![0.0f64; n];
        out[self.rank()] = value;
        // Circulate: after n-1 hops every rank has seen every value.
        let mut carry = vec![self.rank() as f64, value];
        for _ in 0..n - 1 {
            self.send_f64(&carry);
            carry = self.recv_f64();
            out[carry[0] as usize] = carry[1];
        }
        out
    }

    /// Gather a fixed-length `f64` vector from every rank; result is a
    /// `world_size × len` row-major matrix identical on every rank.
    ///
    /// # Panics
    ///
    /// Panics if ranks pass different lengths (detected as a length
    /// mismatch on receive).
    pub fn all_gather_vec(&self, values: &[f64]) -> Vec<Vec<f64>> {
        let n = self.world_size();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); n];
        out[self.rank()] = values.to_vec();
        if n == 1 {
            return out;
        }
        let mut carry = Vec::with_capacity(values.len() + 1);
        carry.push(self.rank() as f64);
        carry.extend_from_slice(values);
        for _ in 0..n - 1 {
            self.send_f64(&carry);
            carry = self.recv_f64();
            assert_eq!(carry.len(), values.len() + 1, "all_gather_vec length mismatch across ranks");
            out[carry[0] as usize] = carry[1..].to_vec();
        }
        out
    }
}

/// Split `len` elements into exactly `n` ranges whose sizes differ by at
/// most one; ranges may be empty when `len < n`. Unlike
/// [`super::bucket_ranges`], the range *count* is guaranteed, which the
/// ring schedule requires (every rank must own a chunk index).
fn ring_chunks(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    #[test]
    fn all_reduce_sum_matches_serial() {
        for n in [1usize, 2, 3, 5, 8] {
            let len = 37;
            let results = run_group(n, move |c| {
                let mut data: Vec<f32> = (0..len).map(|i| (i + c.rank() * 100) as f32).collect();
                c.all_reduce_sum(&mut data);
                data
            });
            let expected: Vec<f32> = (0..len)
                .map(|i| (0..n).map(|r| (i + r * 100) as f32).sum())
                .collect();
            for r in &results {
                assert_eq!(r, &expected, "n={n}");
            }
        }
    }

    #[test]
    fn all_reduce_mean_divides() {
        let results = run_group(4, |c| {
            let mut data = vec![(c.rank() * 4) as f32; 3];
            c.all_reduce_mean(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![6.0; 3]); // (0+4+8+12)/4
        }
    }

    #[test]
    fn weighted_all_reduce_matches_eq9() {
        // Ratios 0.5, 0.3, 0.2 times per-rank constant gradients.
        let weights = [0.5f32, 0.3, 0.2];
        let results = run_group(3, move |c| {
            let mut data = vec![(c.rank() + 1) as f32; 5];
            c.weighted_all_reduce(&mut data, weights[c.rank()]);
            data
        });
        let expected = 0.5 * 1.0 + 0.3 * 2.0 + 0.2 * 3.0;
        for r in results {
            for v in r {
                assert!((v - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bucketed_all_reduce_equals_plain() {
        let results = run_group(3, |c| {
            let mut a: Vec<f32> = (0..50).map(|i| (i * (c.rank() + 1)) as f32).collect();
            let mut b = a.clone();
            c.all_reduce_buckets(&mut a, 7);
            c.all_reduce_sum(&mut b);
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bucket_order_is_reverse() {
        let results = run_group(2, |c| {
            let mut data = vec![1.0f32; 10];
            c.all_reduce_buckets(&mut data, 3)
        });
        for order in results {
            assert!(order[0].end == 10, "last (output-side) bucket first: {order:?}");
            assert_eq!(order.last().unwrap().start, 0);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(4, |c| {
            let mut data = if c.rank() == 0 { vec![3.5f32, -1.0] } else { vec![0.0, 0.0] };
            c.broadcast(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![3.5, -1.0]);
        }
    }

    #[test]
    fn all_gather_scalar_is_rank_indexed() {
        let results = run_group(5, |c| c.all_gather_scalar((c.rank() * 10) as f64));
        for r in results {
            assert_eq!(r, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn all_gather_vec_collects_rows() {
        let results = run_group(3, |c| c.all_gather_vec(&[c.rank() as f64, 1.0]));
        for r in results {
            assert_eq!(r, vec![vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]);
        }
    }

    #[test]
    fn single_rank_is_noop() {
        let results = run_group(1, |c| {
            let mut data = vec![1.0f32, 2.0];
            c.all_reduce_sum(&mut data);
            c.broadcast(&mut data);
            (data, c.all_gather_scalar(7.0))
        });
        assert_eq!(results[0].0, vec![1.0, 2.0]);
        assert_eq!(results[0].1, vec![7.0]);
    }

    #[test]
    fn ring_chunks_exact_count_and_cover() {
        for (len, n) in [(0usize, 3usize), (2, 5), (10, 3), (16, 4)] {
            let chunks = ring_chunks(len, n);
            assert_eq!(chunks.len(), n);
            let mut cursor = 0;
            for c in &chunks {
                assert_eq!(c.start, cursor);
                cursor = c.end;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn all_reduce_shorter_than_world() {
        // Buffer smaller than the rank count must still reduce correctly.
        let results = run_group(5, |c| {
            let mut data = vec![c.rank() as f32 + 1.0; 2];
            c.all_reduce_sum(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![15.0, 15.0]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        // Two back-to-back reduces must not mix payloads.
        let results = run_group(3, |c| {
            let mut a = vec![1.0f32; 8];
            let mut b = vec![10.0f32; 8];
            c.all_reduce_sum(&mut a);
            c.all_reduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
        }
    }

    #[test]
    fn byte_counters_track_wire_traffic() {
        let results = run_group(3, |c| {
            let mut data = vec![1.0f32; 30];
            c.all_reduce_sum(&mut data);
            (c.bytes_sent(), c.bytes_received())
        });
        for (sent, received) in results {
            // 2(n-1) chunk transfers of 10 f32s each = 4 × 40 bytes.
            assert_eq!(sent, 160);
            assert_eq!(received, 160);
        }
    }

    #[test]
    fn tcp_group_matches_in_process_bitwise() {
        let in_process = run_group(3, |c| {
            let mut data: Vec<f32> = (0..23).map(|i| (i as f32 + 0.5) * (c.rank() + 1) as f32).collect();
            c.weighted_all_reduce(&mut data, 0.25 * (c.rank() + 1) as f32);
            data
        });
        let comms = CommGroup::tcp("127.0.0.1:0", 3).expect("tcp ring forms");
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let mut data: Vec<f32> =
                        (0..23).map(|i| (i as f32 + 0.5) * (c.rank() + 1) as f32).collect();
                    c.weighted_all_reduce(&mut data, 0.25 * (c.rank() + 1) as f32);
                    assert!(c.bytes_sent() > 0, "tcp must count wire bytes");
                    data
                })
            })
            .collect();
        let over_tcp: Vec<Vec<f32>> =
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
        for (a, b) in in_process.iter().zip(&over_tcp) {
            let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "backends must agree bitwise");
        }
    }

    #[test]
    fn with_kind_builds_both_backends() {
        for kind in [TransportKind::InProcess, TransportKind::tcp()] {
            let comms = CommGroup::with_kind(2, &kind, None).expect("group forms");
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    thread::spawn(move || {
                        let mut data = vec![2.0f32; 4];
                        c.all_reduce_sum(&mut data);
                        data
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![4.0; 4]);
            }
        }
    }
}

impl Communicator {
    /// Ring reduce-scatter: after the call, rank `r` owns the fully
    /// reduced chunk `r` of the buffer (chunk boundaries from the same
    /// even partition the all-reduce uses); other chunks hold partial
    /// sums and must be treated as scratch. Returns this rank's chunk
    /// range.
    pub fn reduce_scatter(&self, data: &mut [f32]) -> std::ops::Range<usize> {
        let n = self.world_size();
        let rank = self.rank();
        let chunks = ring_chunks(data.len(), n);
        if n == 1 {
            return chunks[0].clone();
        }
        for s in 0..n - 1 {
            let send_idx = (rank + n - s) % n;
            let recv_idx = (rank + n - s - 1) % n;
            self.send_grad(&data[chunks[send_idx].clone()]);
            let incoming = self.recv_grad();
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d += v;
            }
        }
        // After n−1 steps rank r holds the complete sum of chunk (r+1) % n.
        chunks[(rank + 1) % n].clone()
    }

    /// Ring all-gather over the chunk layout produced by
    /// [`Communicator::reduce_scatter`]: every rank contributes its owned
    /// chunk and receives everyone else's, completing an all-reduce. Under
    /// a lossy codec the owned chunk is re-quantized first, so the local
    /// copy matches what every other rank decodes bit-for-bit.
    pub fn all_gather_chunks(&self, data: &mut [f32]) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        let rank = self.rank();
        let chunks = ring_chunks(data.len(), n);
        if self.codec.is_lossy() {
            self.codec.quantize(&mut data[chunks[(rank + 1) % n].clone()]);
        }
        for s in 0..n - 1 {
            let send_idx = (rank + n - s + 1) % n;
            let recv_idx = (rank + n - s) % n;
            self.send_grad(&data[chunks[send_idx].clone()]);
            let incoming = self.recv_grad();
            data[chunks[recv_idx].clone()].copy_from_slice(&incoming);
        }
    }
}

impl Communicator {
    fn send_typed(&self, data: &[f32]) -> Result<(), CommError> {
        self.transport.send(&self.codec.encode(data))
    }

    fn recv_typed(&self, timeout: Duration) -> Result<Vec<f32>, CommError> {
        let frame = self.transport.recv_timeout(timeout)?;
        self.codec.decode(&frame).map_err(|detail| CommError::Io { rank: self.rank(), detail })
    }

    /// [`Communicator::all_reduce_sum`] with a per-receive timeout and a
    /// typed error instead of a panic. On error the buffer is restored to
    /// its pre-call contents, so the caller may safely retry or abandon
    /// the step without corrupting gradients.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if a ring receive exceeds `timeout`;
    /// [`CommError::Dropped`] if a peer endpoint is gone.
    pub fn all_reduce_sum_timeout(&self, data: &mut [f32], timeout: Duration) -> Result<(), CommError> {
        if self.world_size() == 1 {
            return Ok(());
        }
        let snapshot = data.to_vec();
        match self.try_ring_all_reduce(data, timeout) {
            Ok(()) => Ok(()),
            Err(e) => {
                data.copy_from_slice(&snapshot);
                Err(e)
            }
        }
    }

    fn try_ring_all_reduce(&self, data: &mut [f32], timeout: Duration) -> Result<(), CommError> {
        let n = self.world_size();
        let rank = self.rank();
        let chunks = ring_chunks(data.len(), n);
        for s in 0..n - 1 {
            let send_idx = (rank + n - s) % n;
            let recv_idx = (rank + n - s - 1) % n;
            self.send_typed(&data[chunks[send_idx].clone()])?;
            let incoming = self.recv_typed(timeout)?;
            for (d, v) in data[chunks[recv_idx].clone()].iter_mut().zip(incoming) {
                *d += v;
            }
        }
        if self.codec.is_lossy() {
            self.codec.quantize(&mut data[chunks[(rank + 1) % n].clone()]);
        }
        for s in 0..n - 1 {
            let send_idx = (rank + n - s + 1) % n;
            let recv_idx = (rank + n - s) % n;
            self.send_typed(&data[chunks[send_idx].clone()])?;
            let incoming = self.recv_typed(timeout)?;
            data[chunks[recv_idx].clone()].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Resilient sum all-reduce: retries with the policy's exponential,
    /// seeded-jitter backoff. Injected failures (from the group's
    /// [`CommFaultPlan`]) abort an attempt *before* any data moves, so the
    /// buffer is untouched by a failed attempt and every rank observes the
    /// identical failure schedule. Emits one `RecoveryAction` telemetry
    /// event per retry and a `FaultInjected` event when a collective
    /// recovers after injected failures.
    ///
    /// Returns the 1-based attempt number that succeeded.
    ///
    /// # Errors
    ///
    /// [`CommError::RetriesExhausted`] when every attempt the policy allows
    /// failed; [`CommError::Timeout`] / [`CommError::Dropped`] immediately
    /// on a *genuine* transport failure (a gone peer cannot be retried at
    /// this layer — the group must be rebuilt).
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_attempts == 0`.
    pub fn all_reduce_sum_resilient(
        &self,
        data: &mut [f32],
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<u32, CommError> {
        assert!(policy.max_attempts >= 1, "retry policy must allow at least one attempt");
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let injected = self.fault_plan.as_ref().map_or(0, |p| p.failures_at(seq));
        let mut backoff_total = Duration::ZERO;
        for attempt in 1..=policy.max_attempts {
            if attempt <= injected {
                let backoff = policy.backoff(attempt, rng);
                telemetry::emit(Event::RecoveryAction(RecoveryAction {
                    kind: RecoveryKind::CommRetry,
                    node: None,
                    step: seq,
                    attempt,
                    backoff_ns: backoff.as_nanos() as u64,
                }));
                std::thread::sleep(backoff);
                backoff_total += backoff;
                continue;
            }
            self.all_reduce_sum_timeout(data, policy.timeout)?;
            if attempt > 1 {
                telemetry::emit(Event::FaultInjected(FaultInjected {
                    kind: FaultKind::CommFailure,
                    node: None,
                    step: seq,
                    attempts: attempt,
                    magnitude: backoff_total.as_secs_f64(),
                }));
            }
            return Ok(attempt);
        }
        telemetry::emit(Event::FaultInjected(FaultInjected {
            kind: FaultKind::CommTimeout,
            node: None,
            step: seq,
            attempts: policy.max_attempts,
            magnitude: backoff_total.as_secs_f64(),
        }));
        Err(CommError::RetriesExhausted { attempts: policy.max_attempts })
    }

    /// Resilient Eq. (9) weighted all-reduce: scales by `weight` exactly
    /// once, then runs [`Communicator::all_reduce_sum_resilient`]. On any
    /// error the buffer is restored to its *unscaled* contents, so a
    /// retried step re-enters with clean gradients — no sample is ever
    /// double-weighted.
    ///
    /// # Errors
    ///
    /// Same contract as [`Communicator::all_reduce_sum_resilient`].
    pub fn weighted_all_reduce_resilient(
        &self,
        data: &mut [f32],
        weight: f32,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<u32, CommError> {
        let snapshot = data.to_vec();
        for v in data.iter_mut() {
            *v *= weight;
        }
        match self.all_reduce_sum_resilient(data, policy, rng) {
            Ok(attempt) => Ok(attempt),
            Err(e) => {
                data.copy_from_slice(&snapshot);
                Err(e)
            }
        }
    }

    /// Error-feedback Eq. (9) weighted all-reduce for lossy codecs: adds
    /// the residual from previous steps into the gradient, scales by
    /// `weight`, quantizes locally through the group's [`Codec`], stores
    /// the new residual `(scaled − quantized)/weight` (unscaled space, so
    /// it stays meaningful when the adaptive split changes `weight`), and
    /// reduces the quantized buffer. With `feedback = None` or a lossless
    /// codec this is exactly [`Communicator::weighted_all_reduce`].
    ///
    /// # Panics
    ///
    /// Panics if `feedback` covers a different parameter count than
    /// `data`.
    pub fn weighted_all_reduce_ef(&self, data: &mut [f32], weight: f32, feedback: Option<&mut ErrorFeedback>) {
        let Some(ef) = feedback.filter(|_| self.codec.is_lossy()) else {
            self.weighted_all_reduce(data, weight);
            return;
        };
        assert_eq!(ef.len(), data.len(), "error-feedback size must match the gradient");
        ef.compensate(data, 0);
        for v in data.iter_mut() {
            *v *= weight;
        }
        let ideal = data.to_vec();
        self.codec.quantize(data);
        let scale = if weight != 0.0 { 1.0 / weight } else { 0.0 };
        ef.record(&ideal, data, 0, scale);
        self.all_reduce_sum(data);
    }

    /// Resilient variant of [`Communicator::weighted_all_reduce_ef`]: the
    /// same compensate → scale → quantize → reduce pipeline over
    /// [`Communicator::all_reduce_sum_resilient`]. On any error both the
    /// gradient buffer *and* the residual are left exactly as they were
    /// before the call, so a retried step re-enters clean — no gradient
    /// mass is dropped or double-fed.
    ///
    /// # Errors
    ///
    /// Same contract as [`Communicator::all_reduce_sum_resilient`].
    ///
    /// # Panics
    ///
    /// Panics if `feedback` covers a different parameter count than
    /// `data`.
    pub fn weighted_all_reduce_resilient_ef(
        &self,
        data: &mut [f32],
        weight: f32,
        policy: &RetryPolicy,
        rng: &mut StdRng,
        feedback: Option<&mut ErrorFeedback>,
    ) -> Result<u32, CommError> {
        let Some(ef) = feedback.filter(|_| self.codec.is_lossy()) else {
            return self.weighted_all_reduce_resilient(data, weight, policy, rng);
        };
        assert_eq!(ef.len(), data.len(), "error-feedback size must match the gradient");
        let snapshot = data.to_vec();
        ef.compensate(data, 0);
        for v in data.iter_mut() {
            *v *= weight;
        }
        let ideal = data.to_vec();
        self.codec.quantize(data);
        let quantized = data.to_vec();
        match self.all_reduce_sum_resilient(data, policy, rng) {
            Ok(attempt) => {
                // Commit the residual only on success: a failed attempt
                // must leave the accumulator untouched for the retry.
                let scale = if weight != 0.0 { 1.0 / weight } else { 0.0 };
                ef.record(&ideal, &quantized, 0, scale);
                Ok(attempt)
            }
            Err(e) => {
                data.copy_from_slice(&snapshot);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod scatter_gather_tests {
    use super::*;
    use std::thread;

    fn run_group<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    #[test]
    fn reduce_scatter_owns_the_right_chunk() {
        let n = 4;
        let len = 20;
        let results = run_group(n, move |c| {
            let mut data: Vec<f32> = (0..len).map(|i| (i * (c.rank() + 1)) as f32).collect();
            let owned = c.reduce_scatter(&mut data);
            (c.rank(), owned.clone(), data[owned].to_vec())
        });
        let total_weight: f32 = (1..=n).map(|r| r as f32).sum();
        for (rank, range, chunk) in results {
            for (offset, v) in chunk.iter().enumerate() {
                let i = range.start + offset;
                assert_eq!(*v, i as f32 * total_weight, "rank {rank} element {i}");
            }
        }
    }

    #[test]
    fn reduce_scatter_plus_all_gather_equals_all_reduce() {
        let results = run_group(3, |c| {
            let mut a: Vec<f32> = (0..31).map(|i| (i + c.rank() * 7) as f32).collect();
            let mut b = a.clone();
            c.reduce_scatter(&mut a);
            c.all_gather_chunks(&mut a);
            c.all_reduce_sum(&mut b);
            (a, b)
        });
        for (composed, fused) in results {
            assert_eq!(composed, fused);
        }
    }

    #[test]
    fn single_rank_scatter_gather_noop() {
        let results = run_group(1, |c| {
            let mut data = vec![5.0f32, 6.0];
            let owned = c.reduce_scatter(&mut data);
            c.all_gather_chunks(&mut data);
            (owned, data)
        });
        assert_eq!(results[0].0, 0..2);
        assert_eq!(results[0].1, vec![5.0, 6.0]);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use rand::SeedableRng;
    use std::thread;

    fn run_faulty_group<F, T>(n: usize, plan: CommFaultPlan, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create_faulty(n, plan);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
            jitter: 0.5,
            timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn resilient_recovers_from_injected_failures() {
        // Collective 0 fails twice, collective 1 is clean; both must end
        // with the exact plain-all-reduce result.
        let plan = CommFaultPlan::new().fail_at(0, 2);
        let results = run_faulty_group(3, plan, |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7 + c.rank() as u64);
            let policy = fast_policy();
            let mut a = vec![(c.rank() + 1) as f32; 6];
            let attempts_a = c.all_reduce_sum_resilient(&mut a, &policy, &mut rng).expect("recovers");
            let mut b = vec![1.0f32; 6];
            let attempts_b = c.all_reduce_sum_resilient(&mut b, &policy, &mut rng).expect("clean");
            (a, attempts_a, b, attempts_b)
        });
        for (a, attempts_a, b, attempts_b) in results {
            assert_eq!(a, vec![6.0; 6], "sum correct despite injected failures");
            assert_eq!(attempts_a, 3, "two injected failures consume two attempts");
            assert_eq!(b, vec![3.0; 6]);
            assert_eq!(attempts_b, 1);
        }
    }

    #[test]
    fn weighted_resilient_matches_clean_weighted_bitwise() {
        let weights = [0.5f32, 0.3, 0.2];
        let clean = run_group(3, move |c| {
            let mut data: Vec<f32> = (0..9).map(|i| (i * (c.rank() + 2)) as f32).collect();
            c.weighted_all_reduce(&mut data, weights[c.rank()]);
            data
        });
        let plan = CommFaultPlan::new().fail_at(0, 1);
        let faulty = run_faulty_group(3, plan, move |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
            let mut data: Vec<f32> = (0..9).map(|i| (i * (c.rank() + 2)) as f32).collect();
            c.weighted_all_reduce_resilient(&mut data, weights[c.rank()], &fast_policy(), &mut rng)
                .expect("recovers");
            data
        });
        assert_eq!(clean, faulty, "retry path must be numerically identical to the clean path");
    }

    #[test]
    fn exhausted_retries_leave_data_unscaled() {
        // More injected failures than the budget: every rank gets the
        // typed error and its buffer back, byte for byte.
        let policy = RetryPolicy { max_attempts: 2, ..fast_policy() };
        let plan = CommFaultPlan::new().fail_at(0, 99);
        let results = run_faulty_group(3, plan, move |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
            let original: Vec<f32> = (0..5).map(|i| (i + c.rank()) as f32).collect();
            let mut data = original.clone();
            let err = c
                .weighted_all_reduce_resilient(&mut data, 0.25, &policy, &mut rng)
                .expect_err("budget too small");
            (err, data == original)
        });
        for (err, restored) in results {
            assert_eq!(err, CommError::RetriesExhausted { attempts: 2 });
            assert!(restored, "failed collective must not scale or partially reduce the buffer");
        }
    }

    #[test]
    fn dropped_peer_is_a_typed_error() {
        let mut comms = CommGroup::create(3);
        drop(comms.pop()); // rank 2 "crashes" before the collective
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let original = vec![1.0f32, 2.0, 3.0];
                    let mut data = original.clone();
                    let err = c
                        .all_reduce_sum_timeout(&mut data, Duration::from_millis(200))
                        .expect_err("peer is gone");
                    (err, data == original)
                })
            })
            .collect();
        for h in handles {
            let (err, restored) = h.join().expect("rank panicked");
            assert!(
                matches!(err, CommError::Dropped { .. } | CommError::Timeout { .. }),
                "unexpected error: {err:?}"
            );
            assert!(restored, "error path must restore the snapshot");
        }
    }

    #[test]
    fn sequence_numbers_advance_in_lockstep() {
        // Failures injected at seq 1 must hit the *second* resilient
        // collective on every rank, regardless of buffer or timing skew.
        let plan = CommFaultPlan::new().fail_at(1, 1);
        let results = run_faulty_group(2, plan, |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
            let policy = fast_policy();
            let mut a = vec![1.0f32; 4];
            let first = c.all_reduce_sum_resilient(&mut a, &policy, &mut rng).expect("clean");
            let mut b = vec![2.0f32; 4];
            let second = c.all_reduce_sum_resilient(&mut b, &policy, &mut rng).expect("recovers");
            (first, second)
        });
        for (first, second) in results {
            assert_eq!(first, 1);
            assert_eq!(second, 2);
        }
    }

    #[test]
    fn resilient_weighted_over_tcp_recovers() {
        // The fault-injection machinery must be transport-agnostic: the
        // same plan drives retries identically over real sockets.
        let plan = CommFaultPlan::new().fail_at(0, 1);
        let comms = CommGroup::tcp_faulty("127.0.0.1:0", 2, plan).expect("tcp ring forms");
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
                    let mut data = vec![(c.rank() + 1) as f32; 4];
                    let attempts = c
                        .weighted_all_reduce_resilient(&mut data, 0.5, &fast_policy(), &mut rng)
                        .expect("recovers");
                    (attempts, data)
                })
            })
            .collect();
        for h in handles {
            let (attempts, data) = h.join().expect("rank panicked");
            assert_eq!(attempts, 2);
            assert_eq!(data, vec![1.5; 4]); // 0.5·1 + 0.5·2
        }
    }

    // `run_group` clone for this module (same helper as the sibling test mods).
    fn run_group<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommGroup::create(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }
}
