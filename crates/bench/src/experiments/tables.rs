//! Tables 1, 6 and the §5.3 prediction-accuracy study.

use crate::row;
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_core::optperf::OptPerfSolver;
use cannikin_core::perf::{Analyzer, MeasurementAggregation};
use cannikin_telemetry::{self as telemetry, Event};
use cannikin_workloads::{clusters, profiles, WorkloadProfile};
use hetsim::catalog::Gpu;
use hetsim::Simulator;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique `rank` identity per recording run in this process, so events
/// recorded by concurrently running tests/experiments (the recorder is
/// global) can be filtered out of each other's drains.
pub(crate) fn next_session_tag() -> u32 {
    static TAG: AtomicU32 = AtomicU32::new(1);
    TAG.fetch_add(1, Ordering::Relaxed)
}

/// Table 1: the NVIDIA data-center GPU evolution rows, printed from the
/// simulator's catalog.
pub fn table1() -> String {
    let widths = [12, 6, 9, 11, 12, 14];
    let mut out = String::from("Table 1 — evolution of NVIDIA data center GPUs\n");
    out += &row(
        &["model".into(), "year".into(), "archit.".into(), "CUDA cores".into(), "memory (GB)".into(), "FP16 (TFLOPS)".into()],
        &widths,
    );
    out.push('\n');
    for gpu in Gpu::table1() {
        let s = gpu.spec();
        out += &row(
            &[
                s.name.into(),
                s.year.to_string(),
                s.architecture.into(),
                s.cuda_cores.to_string(),
                s.memory_gb.to_string(),
                format!("{:.2}", s.fp16_tflops),
            ],
            &widths,
        );
        out.push('\n');
    }
    out
}

/// §5.3: OptPerf prediction error on cluster A with and without
/// inverse-variance weighting of the measurement streams.
pub fn table_prediction() -> String {
    let mut out = String::from("§5.3 — OptPerf prediction error on cluster A (max over batch range)\n");
    let widths = [24, 14, 14];
    out += &row(&["task".into(), "with IVW".into(), "naive mean".into()], &widths);
    out.push('\n');
    for profile in profiles::all() {
        let (ivw, naive) = prediction_errors(&profile, 131);
        out += &row(
            &[profile.name(), format!("{:.1}%", ivw * 100.0), format!("{:.1}%", naive * 100.0)],
            &widths,
        );
        out.push('\n');
    }
    out
}

/// Maximum relative OptPerf prediction error over the workload's batch
/// range on cluster A, for IVW and naive measurement aggregation.
pub fn prediction_errors(profile: &WorkloadProfile, seed: u64) -> (f64, f64) {
    let cluster = clusters::cluster_a();
    let mut sim = Simulator::new(cluster.clone(), profile.job.clone(), seed);
    let n = cluster.len();
    let caps: Vec<Option<u64>> = (0..n).map(|i| Some(sim.max_local_batch(i))).collect();
    let mut ivw = Analyzer::new(n, MeasurementAggregation::InverseVariance).with_max_batches(caps.clone());
    let mut naive = Analyzer::new(n, MeasurementAggregation::NaiveMean).with_max_batches(caps.clone());

    // Measurement phase: a few epochs at different splits, as the engine
    // would produce during bootstrap + early training.
    let b0 = profile.base_batch.max(2 * n as u64);
    let splits = [
        cannikin_core::optperf::even_split(b0, n),
        cannikin_core::optperf::bootstrap_split(&[1.0, 1.4, 5.0], b0),
        cannikin_core::optperf::even_split(b0 * 2, n),
    ];
    for split in &splits {
        for _ in 0..25 {
            let trace = sim.simulate_batch(split);
            ivw.observe_batch(&trace);
            naive.observe_batch(&trace);
        }
    }

    let cap_total: u64 = (0..n).map(|i| sim.max_local_batch(i)).sum();
    let hi = profile.max_batch.min(cap_total);
    let oracle = Simulator::new(cluster, profile.job.clone(), 0).with_noise(0.0, 0.0);
    let mut max_err = (0.0f64, 0.0f64);
    for i in 0..8 {
        let b = (b0 as f64 * (hi as f64 / b0 as f64).powf(i as f64 / 7.0)).round() as u64;
        for (which, analyzer) in [(0usize, &ivw), (1usize, &naive)] {
            let input = analyzer.solver_input().expect("models ready");
            let mut solver = OptPerfSolver::new(input);
            let Ok(plan) = solver.solve(b) else { continue };
            // Ground truth: the real (noise-free) time of the plan the
            // learned model proposed.
            let actual = oracle.ideal_batch_time(&plan.local_batches);
            let err = (plan.opt_perf - actual).abs() / actual;
            if which == 0 {
                max_err.0 = max_err.0.max(err);
            } else {
                max_err.1 = max_err.1.max(err);
            }
        }
    }
    max_err
}

/// Table 6: Cannikin's optimizer overhead per task on cluster B.
pub fn table6() -> String {
    let mut out = String::from("Table 6 — Cannikin overhead on cluster B\n");
    let widths = [24, 14, 18];
    out += &row(&["task".into(), "max overhead".into(), "overall overhead".into()], &widths);
    out.push('\n');
    for profile in profiles::all() {
        let (max_o, overall) = overheads(&profile, 141);
        out += &row(
            &[profile.name(), format!("{:.4}%", max_o * 100.0), format!("{:.4}%", overall * 100.0)],
            &widths,
        );
        out.push('\n');
    }
    out += "\n(The Rust solver is orders of magnitude faster than the paper's Python\n implementation, so the absolute percentages are far below Table 6's;\n the *ordering* — short-epoch tasks pay relatively more — is preserved.)\n";
    out
}

/// `(max per-epoch overhead fraction, whole-run overhead fraction)` of a
/// Cannikin run on cluster B, computed from the telemetry stream the
/// trainer emits (one `epoch_time_s` + one `overhead_s` counter per
/// epoch) rather than from its in-memory epoch records.
pub fn overheads(profile: &WorkloadProfile, seed: u64) -> (f64, f64) {
    let cluster = clusters::cluster_b();
    let base = profile.base_batch.max(cluster.len() as u64);
    let sim = Simulator::new(cluster, profile.job.clone(), seed);
    let config = TrainerConfig::new(profile.dataset_size, base, profile.max_batch);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");

    let tag = next_session_tag();
    let session = telemetry::Session::start();
    let _identity = telemetry::set_thread_identity(0, tag);
    let target = profile.target_effective_epochs();
    let mut epoch_times = Vec::new();
    let mut overhead_times = Vec::new();
    let mut epochs = 0usize;
    while trainer.effective_epochs() < target && epochs < 400 {
        trainer.run_epoch().expect("run");
        epochs += 1;
        // Drain per epoch: a long run's per-step events would otherwise
        // accumulate in the sink for the whole training job.
        for record in session.drain() {
            if record.rank != tag {
                continue; // another concurrent run's events
            }
            if let Event::Counter(c) = &record.event {
                match c.name.as_str() {
                    "epoch_time_s" => epoch_times.push(c.value),
                    "overhead_s" => overhead_times.push(c.value),
                    _ => {}
                }
            }
        }
    }
    drop(session);
    assert_eq!(epoch_times.len(), epochs, "one epoch_time_s counter per epoch");
    assert_eq!(overhead_times.len(), epochs, "one overhead_s counter per epoch");

    let max_o = epoch_times
        .iter()
        .zip(&overhead_times)
        .map(|(&t, &o)| o / (o + t))
        .fold(0.0, f64::max);
    let total_overhead: f64 = overhead_times.iter().sum();
    let total_time: f64 = epoch_times.iter().sum::<f64>() + total_overhead;
    (max_o, total_overhead / total_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_flagships() {
        let t = table1();
        for name in ["Tesla P100", "Tesla V100", "A100", "H100"] {
            assert!(t.contains(name), "{t}");
        }
        assert!(t.contains("204.9"), "H100 FP16 column");
    }

    #[test]
    fn ivw_prediction_beats_naive() {
        // The §5.3 claim on the small/medium models: IVW keeps the error
        // small while naive averaging inflates it.
        let (ivw, naive) = prediction_errors(&profiles::cifar10_resnet18(), 7);
        assert!(ivw < naive, "ivw {ivw} vs naive {naive}");
        assert!(ivw < 0.10, "ivw error should be small: {ivw}");
    }

    #[test]
    fn overheads_are_small_for_large_models() {
        let (max_o, overall) = overheads(&profiles::squad_bert(), 7);
        assert!(max_o < 0.01, "BERT max overhead {max_o}");
        assert!(overall < 0.01, "BERT overall overhead {overall}");
    }
}
