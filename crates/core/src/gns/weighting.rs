//! Minimum-variance estimator weights (Theorem 4.1).

use crate::error::CannikinError;
use crate::linalg::Matrix;

/// Which estimator family the weights are for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// Weights for the `𝒢ᵢ` (gradient-norm) estimators via `A_𝒢`.
    GradNorm,
    /// Weights for the `𝒮ᵢ` (variance-trace) estimators via `A_𝒮`.
    Variance,
}

/// Compute the Theorem 4.1 weights `w = 𝟙ᵀA⁻¹ / 𝟙ᵀA⁻¹𝟙` for local batch
/// sizes `b` and global batch `total`.
///
/// The common factor `4|G|²tr(Σ)` of the true covariance matrices cancels
/// in the weight formula, so `A` uses only the batch-size-dependent
/// entries printed in the theorem:
///
/// ```text
/// A_𝒢(i,i) = (B + 2bᵢ)/(B² − B·bᵢ)
/// A_𝒢(i,j) = (B² − bᵢ² − bⱼ²)/(B(B − bᵢ)(B − bⱼ))
/// A_𝒮(i,i) = B·bᵢ/(B − bᵢ)
/// A_𝒮(i,j) = bᵢbⱼ(B − bᵢ − bⱼ)/((B − bᵢ)(B − bⱼ))
/// ```
///
/// # Errors
///
/// - fewer than two nodes, any `bᵢ <= 0` or `bᵢ >= B`;
/// - a singular covariance system.
pub fn optimal_weights(b: &[f64], total: f64, kind: WeightKind) -> Result<Vec<f64>, CannikinError> {
    let n = b.len();
    if n < 2 {
        return Err(CannikinError::InvalidEstimate("weights need at least two nodes".into()));
    }
    for &bi in b {
        if bi <= 0.0 || bi >= total {
            return Err(CannikinError::InvalidEstimate(format!(
                "local batch {bi} invalid for global batch {total}"
            )));
        }
    }
    let a = match kind {
        WeightKind::GradNorm => Matrix::from_fn(n, |i, j| {
            if i == j {
                (total + 2.0 * b[i]) / (total * total - total * b[i])
            } else {
                (total * total - b[i] * b[i] - b[j] * b[j]) / (total * (total - b[i]) * (total - b[j]))
            }
        }),
        WeightKind::Variance => Matrix::from_fn(n, |i, j| {
            if i == j {
                total * b[i] / (total - b[i])
            } else {
                b[i] * b[j] * (total - b[i] - b[j]) / ((total - b[i]) * (total - b[j]))
            }
        }),
    };
    let x = a.solve(&vec![1.0; n])?;
    let sum: f64 = x.iter().sum();
    if !sum.is_finite() || sum.abs() < 1e-300 {
        return Err(CannikinError::SingularSystem("theorem 4.1 weights"));
    }
    Ok(x.iter().map(|v| v / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for kind in [WeightKind::GradNorm, WeightKind::Variance] {
            let w = optimal_weights(&[4.0, 9.0, 27.0], 40.0, kind).unwrap();
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{kind:?}: {w:?}");
        }
    }

    #[test]
    fn equal_batches_give_equal_weights() {
        for kind in [WeightKind::GradNorm, WeightKind::Variance] {
            let w = optimal_weights(&[8.0, 8.0, 8.0, 8.0], 32.0, kind).unwrap();
            for &wi in &w {
                assert!((wi - 0.25).abs() < 1e-12, "{kind:?}: {w:?}");
            }
        }
    }

    #[test]
    fn variance_weights_favor_small_batches() {
        // Var(𝒮ᵢ) grows with bᵢ, so the minimum-variance combination puts
        // MORE weight on the node with the SMALLER local batch.
        let w = optimal_weights(&[4.0, 28.0], 32.0, WeightKind::Variance).unwrap();
        assert!(w[0] > w[1], "{w:?}");
    }

    #[test]
    fn gradnorm_weights_favor_large_batches() {
        // Var(𝒢ᵢ) = (B + 2bᵢ)/(B² − B·bᵢ) grows with bᵢ as well (the
        // subtraction amplifies noise), so 𝒢 weighting also prefers the
        // smaller-batch node's estimate.
        let w = optimal_weights(&[4.0, 28.0], 32.0, WeightKind::GradNorm).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1], "{w:?}");
    }

    #[test]
    fn minimum_variance_property_quadratic_form() {
        // w minimizes wᵀAw subject to Σw = 1: compare against a few random
        // perturbations that keep the constraint.
        let b = [3.0, 10.0, 19.0];
        let total = 32.0;
        for kind in [WeightKind::GradNorm, WeightKind::Variance] {
            let w = optimal_weights(&b, total, kind).unwrap();
            let a = match kind {
                WeightKind::GradNorm => Matrix::from_fn(3, |i, j| {
                    if i == j {
                        (total + 2.0 * b[i]) / (total * total - total * b[i])
                    } else {
                        (total * total - b[i] * b[i] - b[j] * b[j])
                            / (total * (total - b[i]) * (total - b[j]))
                    }
                }),
                WeightKind::Variance => Matrix::from_fn(3, |i, j| {
                    if i == j {
                        total * b[i] / (total - b[i])
                    } else {
                        b[i] * b[j] * (total - b[i] - b[j]) / ((total - b[i]) * (total - b[j]))
                    }
                }),
            };
            let quad = |w: &[f64]| {
                let mut acc = 0.0;
                for i in 0..3 {
                    for j in 0..3 {
                        acc += w[i] * a.at(i, j) * w[j];
                    }
                }
                acc
            };
            let base = quad(&w);
            for delta in [0.05f64, -0.08, 0.12] {
                // Shift mass between nodes 0 and 2, keeping the sum at 1.
                let perturbed = vec![w[0] + delta, w[1], w[2] - delta];
                assert!(quad(&perturbed) >= base - 1e-12, "{kind:?} delta {delta}");
            }
        }
    }

    #[test]
    fn rejects_invalid_batches() {
        assert!(optimal_weights(&[8.0], 8.0, WeightKind::GradNorm).is_err());
        assert!(optimal_weights(&[8.0, 0.0], 8.0, WeightKind::GradNorm).is_err());
        assert!(optimal_weights(&[8.0, 8.0], 8.0, WeightKind::Variance).is_err());
    }
}
