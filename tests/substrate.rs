//! Substrate-level integration: datasets + loaders + collectives +
//! simulator interacting across crates, plus proptest invariants on the
//! epoch-sharding loader.

use cannikin::collectives::{bucket_ranges, CommGroup};
use cannikin::core::engine::HeteroDataLoader;
use cannikin::dnn::data::gaussian_blob_images;
use cannikin::sim::Simulator;
use cannikin::workloads::{clusters, profiles};
use proptest::prelude::*;
use std::thread;

#[test]
fn hetero_loader_covers_dataset_without_overlap_across_nodes() {
    let mut loader = HeteroDataLoader::new(10_000, 3);
    let plan = loader.next_epoch(&[96, 32, 16, 8]);
    let mut seen = vec![false; 10_000];
    for node in 0..plan.nodes() {
        for batch in plan.node_batches(node) {
            for &idx in batch {
                assert!(!seen[idx], "sample {idx} assigned twice");
                seen[idx] = true;
            }
        }
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert_eq!(covered, plan.steps() * 152);
}

#[test]
fn image_batches_flow_through_cnn_shapes() {
    use cannikin::dnn::layers::Layer;
    use cannikin::dnn::models::mini_cnn;
    let ds = gaussian_blob_images(64, 4, 3, 8, 5);
    let mut loader = HeteroDataLoader::new(ds.len(), 9);
    let plan = loader.next_epoch(&[6, 2]);
    let mut model = mini_cnn(3, 8, 4, 1);
    let (x, y) = ds.batch(&plan.node_batches(0)[0]);
    assert_eq!(x.shape(), &[6, 3, 8, 8]);
    let logits = model.forward(&x, true);
    assert_eq!(logits.shape(), &[6, 4]);
    assert_eq!(y.len(), 6);
}

#[test]
fn simulator_epoch_and_collectives_compose() {
    // A smoke test across three crates: plan an epoch for the solver's
    // split, simulate its timing, and do one real all-reduce sized like
    // the job's gradient buckets.
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_a();
    let mut sim = Simulator::new(cluster, profile.job.clone(), 21);
    let trace = sim.simulate_batch(&[40, 28, 12]);
    assert_eq!(trace.observations.len(), 3);
    assert!(trace.batch_time > 0.0);

    let buckets = profile.job.num_buckets;
    let comms = CommGroup::create(3);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                let mut grad = vec![1.0f32; 1000];
                let order = comm.all_reduce_buckets(&mut grad, buckets);
                (grad[0], order.len())
            })
        })
        .collect();
    for h in handles {
        let (v, k) = h.join().expect("rank");
        assert_eq!(v, 3.0);
        assert_eq!(k, buckets);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loader_shards_exactly(
        dataset_len in 100usize..5000,
        splits in proptest::collection::vec(1u64..40, 2..6),
        seed in 0u64..1000,
    ) {
        let mut loader = HeteroDataLoader::new(dataset_len, seed);
        let plan = loader.next_epoch(&splits);
        let total: u64 = splits.iter().sum();
        prop_assert_eq!(plan.steps(), dataset_len / total as usize);
        for (node, &b) in splits.iter().enumerate() {
            for batch in plan.node_batches(node) {
                prop_assert_eq!(batch.len() as u64, b);
                prop_assert!(batch.iter().all(|&i| i < dataset_len));
            }
        }
    }

    #[test]
    fn alternating_plans_preserve_pairing(
        dataset_len in 200usize..4000,
        splits in proptest::collection::vec(2u64..30, 2..5),
    ) {
        use cannikin::dnn::data::EpochPlan;
        let odd: Vec<u64> = splits.iter().rev().copied().collect();
        let plan = EpochPlan::new_alternating(dataset_len, &splits, &odd, 7);
        prop_assert_eq!(plan.steps() % 2, 0);
        for (node, (&be, &bo)) in splits.iter().zip(&odd).enumerate() {
            for (step, batch) in plan.node_batches(node).iter().enumerate() {
                let expected = if step % 2 == 0 { be } else { bo };
                prop_assert_eq!(batch.len() as u64, expected);
            }
        }
    }

    #[test]
    fn bucket_ranges_partition(total in 0usize..10_000, buckets in 1usize..64) {
        let ranges = bucket_ranges(total, buckets);
        let mut cursor = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, total);
    }

    #[test]
    fn noise_free_simulation_is_deterministic(
        b0 in 1u64..200, b1 in 1u64..200, b2 in 1u64..200,
    ) {
        let profile = profiles::imagenet_resnet50();
        let cluster = clusters::cluster_a();
        let sim1 = Simulator::new(cluster.clone(), profile.job.clone(), 1).with_noise(0.0, 0.0);
        let sim2 = Simulator::new(cluster, profile.job.clone(), 999).with_noise(0.0, 0.0);
        let local = [b0, b1, b2];
        prop_assert_eq!(sim1.ideal_batch_time(&local), sim2.ideal_batch_time(&local));
        // And Eq. (7) agrees with the event simulation for every split.
        let ev = sim1.ideal_batch_time(&local);
        let eq7 = sim1.eq7_batch_time(&local);
        prop_assert!((ev - eq7).abs() <= eq7 * 1e-12);
    }
}
