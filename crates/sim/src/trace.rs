//! Observation records produced by the simulator.
//!
//! These are the *only* things the Cannikin analyzer is allowed to see —
//! the ground-truth coefficients stay inside the simulator, exactly as a
//! real cluster's physics stay inside the hardware.
//!
//! The types themselves now live in [`cannikin_telemetry::trace`] so the
//! simulator, the engine, and the telemetry exporters share one format;
//! this module re-exports them to keep the original `hetsim::trace` paths
//! compiling.

pub use cannikin_telemetry::trace::{BatchTrace, EpochTrace, NodeObservation};
