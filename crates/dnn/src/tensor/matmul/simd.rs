//! Runtime-dispatched AVX2/FMA microkernel for the blocked GEMM core.
//!
//! The scalar core in `super::blocked` relies on LLVM
//! autovectorizing a 2×16 register tile against the baseline `x86-64`
//! target, which caps it at SSE width without fused multiply-adds. This
//! module adds a hand-written 6×16 AVX2+FMA microkernel (12 accumulator
//! `ymm` registers, two B loads and one A broadcast live per `k` step —
//! 15 of the 16 architectural registers, the classic BLIS-style shape)
//! and the machinery to pick between the two at run time:
//!
//! 1. **Detection.** [`avx2_available`] checks `avx2` *and* `fma` once via
//!    `is_x86_feature_detected!`; on non-`x86_64` targets it is `false` and
//!    the scalar core is the only kernel.
//! 2. **Policy.** `CANNIKIN_SIMD` (read once per process, see
//!    [`configured_kernel`]) selects `auto` (default: use AVX2 when
//!    detected), `off`/`scalar` (force the scalar core — bitwise identical
//!    to the pre-SIMD build), or `avx2` (request the SIMD core, still
//!    falling back to scalar where unsupported).
//! 3. **Override.** A thread-local [`KernelGuard`] (or the [`with_kernel`]
//!    closure form) pins the kernel for tests and benches regardless of
//!    environment, mirroring [`ThreadBudgetGuard`](crate::tensor::threads::ThreadBudgetGuard).
//!
//! Dispatch happens once per `super::blocked::gemm_strided`
//! call: the resolved [`Kernel`] is passed down into the row-partitioned
//! worker threads as a value, so an override installed on the calling
//! thread governs the whole operation, spawned workers included.
//!
//! The AVX2 path reuses the scalar core's packing (panels are packed
//! 6-row/16-column instead of 2-row/16-column via the const-generic
//! packers) and its cache-blocking structure; only the register tile and
//! the block heights differ. FMA contracts the multiply-add, so results
//! differ from the scalar core by rounding only — the `kernel_equivalence`
//! proptests bound both against the naive reference.

use crate::tensor::scratch;
use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable selecting the GEMM kernel policy.
pub const SIMD_ENV: &str = "CANNIKIN_SIMD";

/// Microkernel rows of the AVX2 register tile (panel height of packed A).
pub(super) const AVX2_MR: usize = 6;
/// Microkernel columns, shared with the scalar core (two `ymm` lanes).
const NR: usize = super::blocked::NR;
/// Rows of A packed per cache block (multiple of [`AVX2_MR`]).
const MC: usize = 72;
/// Depth of the packed inner-dimension slice.
const KC: usize = 256;
/// Columns of B packed per cache block (multiple of [`NR`]).
const NC: usize = 256;

/// A concrete GEMM kernel implementation, resolved from policy + CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable autovectorized scalar core (2×16 register tile).
    Scalar,
    /// Hand-written AVX2+FMA core (6×16 register tile). Only ever resolved
    /// on `x86_64` hosts where both `avx2` and `fma` are detected.
    Avx2,
}

impl Kernel {
    /// Panel height the kernel packs A into — the row-chunk alignment unit.
    pub(super) fn mr(self) -> usize {
        match self {
            Kernel::Scalar => super::blocked::MR,
            Kernel::Avx2 => AVX2_MR,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
        })
    }
}

/// The user-facing kernel *request*, before CPU detection is applied.
///
/// Parsed from `CANNIKIN_SIMD`; see [`resolve`] for how each policy maps
/// to a [`Kernel`] on the current machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Use the AVX2 core when the CPU supports it, scalar otherwise.
    #[default]
    Auto,
    /// Force the scalar core; bitwise identical to the pre-SIMD build.
    Scalar,
    /// Request the AVX2 core; still falls back to scalar when unsupported
    /// (a hard crash on older hardware helps nobody).
    Avx2,
}

/// Error from parsing a [`SimdPolicy`]; lists the accepted values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimdPolicyError {
    value: String,
}

impl std::fmt::Display for ParseSimdPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown SIMD policy `{}` (expected `auto`, `off`, `scalar` or `avx2`)", self.value)
    }
}

impl std::error::Error for ParseSimdPolicyError {}

impl std::str::FromStr for SimdPolicy {
    type Err = ParseSimdPolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdPolicy::Auto),
            "off" | "scalar" => Ok(SimdPolicy::Scalar),
            "avx2" => Ok(SimdPolicy::Avx2),
            _ => Err(ParseSimdPolicyError { value: s.to_string() }),
        }
    }
}

impl std::fmt::Display for SimdPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Scalar => "off",
            SimdPolicy::Avx2 => "avx2",
        })
    }
}

/// Whether this CPU supports the AVX2 kernel (`avx2` *and* `fma`).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Map a policy to the kernel that will actually run on this machine.
pub fn resolve(policy: SimdPolicy) -> Kernel {
    match policy {
        SimdPolicy::Scalar => Kernel::Scalar,
        SimdPolicy::Auto | SimdPolicy::Avx2 => {
            if avx2_available() {
                Kernel::Avx2
            } else {
                Kernel::Scalar
            }
        }
    }
}

static CONFIGURED: OnceLock<Kernel> = OnceLock::new();

thread_local! {
    static KERNEL_OVERRIDE: Cell<Option<Kernel>> = const { Cell::new(None) };
}

/// Process-wide kernel: `CANNIKIN_SIMD` resolved against the CPU, read
/// once; later changes to the variable have no effect. Unset or malformed
/// values fall back to [`SimdPolicy::Auto`] — strict validation of the
/// knob lives in `cannikin-core`'s `RuntimeOptions`, which refuses typos
/// up front.
pub fn configured_kernel() -> Kernel {
    *CONFIGURED.get_or_init(|| {
        let policy = std::env::var(SIMD_ENV)
            .ok()
            .and_then(|v| v.parse::<SimdPolicy>().ok())
            .unwrap_or_default();
        resolve(policy)
    })
}

/// The kernel GEMMs launched from the *current* thread will use: the
/// innermost [`KernelGuard`] override, or [`configured_kernel`] when none
/// is installed.
pub fn active_kernel() -> Kernel {
    KERNEL_OVERRIDE.with(|c| c.get()).unwrap_or_else(configured_kernel)
}

/// RAII override of the current thread's GEMM kernel.
///
/// Used by the equivalence proptests and the perf bench to pin the scalar
/// and AVX2 paths against each other regardless of `CANNIKIN_SIMD`. Guards
/// nest; dropping one restores the previous kernel. Requesting
/// [`Kernel::Avx2`] on a host without AVX2+FMA installs [`Kernel::Scalar`]
/// instead — an override must never select an illegal instruction.
///
/// # Examples
///
/// ```
/// use minidnn::tensor::simd::{active_kernel, Kernel, KernelGuard};
///
/// let outer = active_kernel();
/// {
///     let _guard = KernelGuard::new(Kernel::Scalar);
///     assert_eq!(active_kernel(), Kernel::Scalar);
/// }
/// assert_eq!(active_kernel(), outer);
/// ```
#[derive(Debug)]
pub struct KernelGuard {
    previous: Option<Kernel>,
}

impl KernelGuard {
    /// Pin GEMMs launched from this thread to `kernel` until the guard
    /// drops (downgraded to [`Kernel::Scalar`] if the CPU lacks AVX2).
    pub fn new(kernel: Kernel) -> Self {
        let kernel = if kernel == Kernel::Avx2 && !avx2_available() { Kernel::Scalar } else { kernel };
        let previous = KERNEL_OVERRIDE.with(|c| c.replace(Some(kernel)));
        KernelGuard { previous }
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        KERNEL_OVERRIDE.with(|c| c.set(self.previous));
    }
}

/// Run `f` with the GEMM kernel pinned — the closure form of
/// [`KernelGuard`].
pub fn with_kernel<R>(kernel: Kernel, f: impl FnOnce() -> R) -> R {
    let _guard = KernelGuard::new(kernel);
    f()
}

/// Single-threaded AVX2 blocked GEMM over the full `[m, n]` output —
/// the SIMD twin of `blocked::gemm_serial_scalar`, sharing its packing
/// and loop structure with a 6-row A panel and taller cache block.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_serial_avx2(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    let mut apack = scratch::take(MC * KC);
    let mut bpack = scratch::take(KC * NC);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            super::blocked::pack_b_panels::<NR>(bpack.as_mut_slice(), b, b_rs, b_cs, pc, jc, kc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                super::blocked::pack_a_panels::<AVX2_MR>(apack.as_mut_slice(), a, a_rs, a_cs, ic, pc, kc, mc);
                macro_kernel_avx2(apack.as_slice(), bpack.as_slice(), c, ic, jc, mc, nc, kc, n);
            }
        }
    }
}

/// Unreachable stub: [`Kernel::Avx2`] is never resolved off `x86_64`.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_serial_avx2(
    _m: usize,
    _n: usize,
    _k: usize,
    _a: &[f32],
    _a_rs: usize,
    _a_cs: usize,
    _b: &[f32],
    _b_rs: usize,
    _b_cs: usize,
    _c: &mut [f32],
) {
    unreachable!("AVX2 kernel resolved on a non-x86_64 target");
}

/// Multiply one packed A block against one packed B block, accumulating
/// into the `mc × nc` region of C at `(ic, jc)` via the 6×16 microkernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn macro_kernel_avx2(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
) {
    for q in 0..nc.div_ceil(NR) {
        let bp = &bpack[q * kc * NR..][..kc * NR];
        let nr = NR.min(nc - q * NR);
        for p in 0..mc.div_ceil(AVX2_MR) {
            let ap = &apack[p * kc * AVX2_MR..][..kc * AVX2_MR];
            let mr = AVX2_MR.min(mc - p * AVX2_MR);
            let c0 = (ic + p * AVX2_MR) * ldc + jc + q * NR;
            debug_assert!(c0 + (mr - 1) * ldc + nr <= c.len(), "microkernel tile in bounds");
            // SAFETY: `Kernel::Avx2` is only resolved when `avx2_available()`
            // reported both `avx2` and `fma`, so the target features are
            // present; every write lands at `c0 + r·ldc + j` with `r < mr`,
            // `j < nr`, which the caller's tiling keeps inside `c`; the
            // packed panels are at least `kc·MR`/`kc·NR` long by the slice
            // bounds taken above.
            unsafe { micro_6x16(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr().add(c0), ldc, mr, nr) };
        }
    }
}

/// 6×16 AVX2+FMA register tile: `acc[r][j] += ap[kk·6 + r] · bp[kk·16 + j]`
/// over `kk < kc`, then `C[r][j] += acc[r][j]` for the live `mr × nr` edge.
///
/// Register budget per `k` step: 12 accumulators + 2 B lanes + 1 broadcast
/// A value = 15 of the 16 `ymm` registers, so nothing spills.
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available, `ap`/`bp` point at
/// panels of at least `kc·6` / `kc·16` floats, and `c + r·ldc + j` is
/// valid for all `r < mr`, `j < nr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_6x16(kc: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize, mr: usize, nr: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; AVX2_MR];
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(kk * NR));
        let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(kk * AVX2_MR + r));
            acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
            acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
        }
    }
    if mr == AVX2_MR && nr == NR {
        // Full tile: straight vector read-modify-write of the C rows.
        for (r, acc_row) in acc.iter().enumerate() {
            let crow = c.add(r * ldc);
            _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc_row[0]));
            _mm256_storeu_ps(crow.add(8), _mm256_add_ps(_mm256_loadu_ps(crow.add(8)), acc_row[1]));
        }
    } else {
        // Edge tile: spill the accumulators and add only the live lanes.
        let mut tmp = [0.0f32; NR];
        for (r, acc_row) in acc.iter().enumerate().take(mr) {
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc_row[0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc_row[1]);
            let crow = c.add(r * ldc);
            for (j, &v) in tmp.iter().enumerate().take(nr) {
                *crow.add(j) += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_all_accepted_spellings() {
        assert_eq!("auto".parse::<SimdPolicy>().unwrap(), SimdPolicy::Auto);
        assert_eq!("off".parse::<SimdPolicy>().unwrap(), SimdPolicy::Scalar);
        assert_eq!("scalar".parse::<SimdPolicy>().unwrap(), SimdPolicy::Scalar);
        assert_eq!("avx2".parse::<SimdPolicy>().unwrap(), SimdPolicy::Avx2);
        assert_eq!(" AVX2 ".parse::<SimdPolicy>().unwrap(), SimdPolicy::Avx2);
    }

    #[test]
    fn policy_parse_error_lists_valid_values() {
        let err = "sse9".parse::<SimdPolicy>().unwrap_err();
        let msg = err.to_string();
        for expected in ["`auto`", "`off`", "`scalar`", "`avx2`", "sse9"] {
            assert!(msg.contains(expected), "{msg:?} should mention {expected}");
        }
    }

    #[test]
    fn scalar_policy_always_resolves_scalar() {
        assert_eq!(resolve(SimdPolicy::Scalar), Kernel::Scalar);
    }

    #[test]
    fn auto_and_avx2_policies_follow_detection() {
        let expected = if avx2_available() { Kernel::Avx2 } else { Kernel::Scalar };
        assert_eq!(resolve(SimdPolicy::Auto), expected);
        assert_eq!(resolve(SimdPolicy::Avx2), expected);
    }

    #[test]
    fn guard_overrides_and_restores() {
        let base = active_kernel();
        with_kernel(Kernel::Scalar, || {
            assert_eq!(active_kernel(), Kernel::Scalar);
            with_kernel(Kernel::Avx2, || {
                let want = if avx2_available() { Kernel::Avx2 } else { Kernel::Scalar };
                assert_eq!(active_kernel(), want);
            });
            assert_eq!(active_kernel(), Kernel::Scalar);
        });
        assert_eq!(active_kernel(), base);
    }

    #[test]
    fn override_is_thread_local() {
        with_kernel(Kernel::Scalar, || {
            let inner = std::thread::spawn(active_kernel).join().unwrap();
            assert_eq!(inner, configured_kernel());
        });
    }

    #[test]
    fn kernel_and_policy_display_roundtrip() {
        assert_eq!(Kernel::Scalar.to_string(), "scalar");
        assert_eq!(Kernel::Avx2.to_string(), "avx2");
        for p in [SimdPolicy::Auto, SimdPolicy::Scalar, SimdPolicy::Avx2] {
            assert_eq!(p.to_string().parse::<SimdPolicy>().unwrap(), p);
        }
    }
}
