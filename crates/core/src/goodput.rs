//! Goodput-driven total-batch-size selection (§4.1, §4.5).
//!
//! Before each epoch the adaptive engine enumerates total-batch-size
//! candidates from the configured range, predicts *OptPerf* for each, and
//! picks the candidate maximizing goodput = throughput × statistical
//! efficiency. Running the full OptPerf sweep every epoch would be
//! wasteful, so — following §4.5 — the sweep runs once (`OptPerf_init`),
//! is cached, and later epochs re-rank the cached predictions under the
//! fresh gradient-noise estimate, re-solving only the chosen candidate.
//! If that re-solve reveals a changed overlap pattern, the cache is
//! rebuilt (with each candidate's search warm-started from its neighbor,
//! the "overlap state searching" optimization).

use crate::error::CannikinError;
use crate::gns::goodput;
use crate::optperf::{compute_span, OptPerfSolver, Plan};
use cannikin_telemetry::{self as telemetry, Event, GoodputEval};
use serde::{Deserialize, Serialize};

/// A cached OptPerf prediction for one total-batch-size candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CachedCandidate {
    /// Effective total batch (micro-batch × accumulation).
    total: u64,
    /// Predicted time of one *optimizer step* (all micro-steps + sync), s.
    step_time: f64,
    boundary: usize,
    /// Gradient-accumulation factor (1 = plain synchronous step).
    accumulation: u64,
}

/// The outcome of one batch-size selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen *effective* total batch size (micro-batch × accumulation).
    pub total: u64,
    /// OptPerf plan for one micro-batch, solved with the current models.
    pub plan: Plan,
    /// Gradient-accumulation factor: micro-steps per optimizer step
    /// (1 = plain synchronous training).
    pub accumulation: u64,
    /// Predicted goodput at the chosen size (reference-batch samples/s).
    pub goodput: f64,
    /// Linear solves spent this selection (overhead accounting).
    pub solves: usize,
    /// Whether the full candidate sweep was (re)run this selection.
    pub cache_rebuilt: bool,
}

/// Goodput-maximizing batch-size selector with the `OptPerf_init` cache.
#[derive(Debug, Clone)]
pub struct GoodputEngine {
    base_batch: u64,
    min_batch: u64,
    max_batch: u64,
    candidates_per_decade: usize,
    max_accumulation: u64,
    cache: Option<Vec<CachedCandidate>>,
}

impl GoodputEngine {
    /// Create a selector over `[min_batch, max_batch]` with statistical
    /// efficiency referenced to `base_batch` (the user's B₀ from Table 5).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_batch <= max_batch` and `base_batch > 0`.
    pub fn new(base_batch: u64, min_batch: u64, max_batch: u64) -> Self {
        assert!(base_batch > 0, "base batch must be positive");
        assert!(min_batch > 0 && min_batch <= max_batch, "invalid batch range");
        GoodputEngine { base_batch, min_batch, max_batch, candidates_per_decade: 12, max_accumulation: 1, cache: None }
    }

    /// Allow gradient accumulation up to `max` micro-steps per optimizer
    /// step (builder style). Candidates whose batch exceeds the cluster's
    /// memory capacity are then realized as several no-sync micro-batches
    /// followed by one synchronized step — extending the adaptive range
    /// beyond GPU memory, as Pollux does.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    #[must_use]
    pub fn with_accumulation(mut self, max: u64) -> Self {
        assert!(max > 0, "accumulation factor must be at least 1");
        self.max_accumulation = max;
        self
    }

    /// The reference batch size B₀.
    pub fn base_batch(&self) -> u64 {
        self.base_batch
    }

    /// The candidate totals: a geometric grid over the range (ascending,
    /// deduplicated, endpoints included). Geometric spacing matches how
    /// goodput varies — multiplicatively in `B`.
    pub fn candidates(&self) -> Vec<u64> {
        let lo = self.min_batch as f64;
        let hi = self.max_batch as f64;
        if self.min_batch == self.max_batch {
            return vec![self.min_batch];
        }
        let decades = (hi / lo).log10();
        let count = ((decades * self.candidates_per_decade as f64).ceil() as usize).clamp(2, 40);
        let mut out: Vec<u64> = (0..=count)
            .map(|i| (lo * (hi / lo).powf(i as f64 / count as f64)).round() as u64)
            .collect();
        out.dedup();
        out
    }

    /// Drop the cached sweep (models changed materially — e.g. a node's
    /// contention factor moved).
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Select the goodput-maximizing total batch size under the gradient
    /// noise scale `phi`, solving with `solver` (built from the current
    /// learned models).
    ///
    /// # Errors
    ///
    /// Propagates solver infeasibility; candidates that are individually
    /// infeasible (below the node count, above memory caps) are skipped,
    /// and an error is returned only when *no* candidate is feasible.
    pub fn select(&mut self, solver: &mut OptPerfSolver, phi: f64) -> Result<Selection, CannikinError> {
        let mut solves = 0usize;
        let mut rebuilt = false;
        if self.cache.is_none() {
            self.rebuild_cache(solver, &mut solves)?;
            rebuilt = true;
        }
        let base_batch = self.base_batch;
        let pick = move |cache: &[CachedCandidate]| {
            cache
                .iter()
                .max_by(|a, b| {
                    goodput(phi, base_batch, a.total, a.step_time)
                        .total_cmp(&goodput(phi, base_batch, b.total, b.step_time))
                })
                .copied()
        };
        let cache = self.cache.as_ref().expect("cache just built");
        let best = pick(cache)
            .ok_or(CannikinError::InfeasibleBatch { total: self.min_batch, reason: "no feasible candidate".into() })?;

        // Re-solve the winner with the freshest models.
        solver.set_warm_boundary(best.boundary);
        let micro = best.total / best.accumulation;
        let plan = solver.solve(micro)?;
        solves += plan.solves;

        // Overlap pattern changed since the sweep? Rebuild and re-pick.
        if plan.boundary != best.boundary && !rebuilt {
            self.rebuild_cache(solver, &mut solves)?;
            rebuilt = true;
            let cache = self.cache.as_ref().expect("cache just rebuilt");
            let best2 = pick(cache).expect("cache non-empty after rebuild");
            solver.set_warm_boundary(best2.boundary);
            let micro2 = best2.total / best2.accumulation;
            let plan2 = solver.solve(micro2)?;
            solves += plan2.solves;
            let step_time2 = plan2.opt_perf + (best2.accumulation - 1) as f64 * compute_span(solver.input(), &plan2.local_batches);
            let g = goodput(phi, self.base_batch, best2.total, step_time2);
            self.update_entry(best2.total, step_time2, &plan2);
            self.emit_eval(phi, best2.total, g, best2.accumulation, rebuilt);
            return Ok(Selection {
                total: best2.total,
                accumulation: best2.accumulation,
                goodput: g,
                plan: plan2,
                solves,
                cache_rebuilt: rebuilt,
            });
        }

        let step_time = plan.opt_perf + (best.accumulation - 1) as f64 * compute_span(solver.input(), &plan.local_batches);
        let g = goodput(phi, self.base_batch, best.total, step_time);
        self.update_entry(best.total, step_time, &plan);
        self.emit_eval(phi, best.total, g, best.accumulation, rebuilt);
        Ok(Selection {
            total: best.total,
            accumulation: best.accumulation,
            goodput: g,
            plan,
            solves,
            cache_rebuilt: rebuilt,
        })
    }

    fn emit_eval(&self, phi: f64, total: u64, goodput: f64, accumulation: u64, cache_rebuilt: bool) {
        if telemetry::enabled() {
            telemetry::emit(Event::GoodputEval(GoodputEval {
                phi,
                total,
                goodput,
                accumulation,
                candidates: self.cache.as_ref().map_or(0, Vec::len) as u32,
                cache_rebuilt,
            }));
        }
    }

    fn update_entry(&mut self, total: u64, step_time: f64, plan: &Plan) {
        if let Some(cache) = self.cache.as_mut() {
            if let Some(entry) = cache.iter_mut().find(|c| c.total == total) {
                entry.step_time = step_time;
                entry.boundary = plan.boundary;
            }
        }
    }

    fn rebuild_cache(&mut self, solver: &mut OptPerfSolver, solves: &mut usize) -> Result<(), CannikinError> {
        // Sweep candidates ascending so each solve warm-starts from the
        // previous candidate's overlap state (§4.5).
        let mut cache = Vec::new();
        for total in self.candidates() {
            if let Some(entry) = self.evaluate_candidate(solver, total, solves)? {
                cache.push(entry);
            }
        }
        if cache.is_empty() {
            return Err(CannikinError::InfeasibleBatch {
                total: self.min_batch,
                reason: "every candidate in the range is infeasible".into(),
            });
        }
        self.cache = Some(cache);
        Ok(())
    }

    /// Evaluate one candidate, escalating to gradient accumulation when
    /// the plain batch exceeds the memory caps. Returns `None` when no
    /// accumulation factor within the limit makes it feasible.
    fn evaluate_candidate(
        &self,
        solver: &mut OptPerfSolver,
        total: u64,
        solves: &mut usize,
    ) -> Result<Option<CachedCandidate>, CannikinError> {
        let n = solver.input().len() as u64;
        let mut accum = 1u64;
        while accum <= self.max_accumulation {
            let micro = (total / accum).max(n);
            match solver.solve(micro) {
                Ok(plan) => {
                    *solves += plan.solves;
                    let span = compute_span(solver.input(), &plan.local_batches);
                    let step_time = plan.opt_perf + (accum - 1) as f64 * span;
                    return Ok(Some(CachedCandidate {
                        total: micro * accum,
                        step_time,
                        boundary: plan.boundary,
                        accumulation: accum,
                    }));
                }
                Err(CannikinError::InfeasibleBatch { .. }) => {
                    accum *= 2;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optperf::SolverInput;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn solver() -> OptPerfSolver {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &JobSpec::resnet50_imagenet()))
    }

    #[test]
    fn candidates_are_geometric_and_bounded() {
        let engine = GoodputEngine::new(64, 64, 4096);
        let c = engine.candidates();
        assert_eq!(*c.first().unwrap(), 64);
        assert_eq!(*c.last().unwrap(), 4096);
        for pair in c.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // Roughly geometric: max ratio close to min ratio.
        let ratios: Vec<f64> = c.windows(2).map(|p| p[1] as f64 / p[0] as f64).collect();
        let rmax = ratios.iter().copied().fold(f64::MIN, f64::max);
        let rmin = ratios.iter().copied().fold(f64::MAX, f64::min);
        assert!(rmax / rmin < 1.6, "ratios {ratios:?}");
    }

    #[test]
    fn degenerate_range_is_single_candidate() {
        let engine = GoodputEngine::new(64, 128, 128);
        assert_eq!(engine.candidates(), vec![128]);
    }

    #[test]
    fn low_noise_prefers_small_batches() {
        let mut s = solver();
        let mut engine = GoodputEngine::new(64, 64, 4096);
        let small = engine.select(&mut s, 20.0).unwrap();
        engine.invalidate();
        let large = engine.select(&mut s, 20_000.0).unwrap();
        assert!(
            large.total > small.total,
            "high noise {} should pick bigger batches than low noise {}",
            large.total,
            small.total
        );
    }

    #[test]
    fn cache_avoids_resweeping() {
        let mut s = solver();
        let mut engine = GoodputEngine::new(64, 64, 4096);
        let first = engine.select(&mut s, 500.0).unwrap();
        assert!(first.cache_rebuilt);
        let second = engine.select(&mut s, 520.0).unwrap();
        assert!(!second.cache_rebuilt);
        assert!(second.solves < first.solves / 2, "cached selection {} vs sweep {}", second.solves, first.solves);
    }

    #[test]
    fn selection_plan_sums_to_total() {
        let mut s = solver();
        let mut engine = GoodputEngine::new(64, 64, 2048);
        let sel = engine.select(&mut s, 800.0).unwrap();
        assert_eq!(sel.plan.local_batches.iter().sum::<u64>(), sel.total);
        assert!(sel.goodput > 0.0);
    }

    #[test]
    fn accumulation_unlocks_batches_beyond_memory() {
        // Tighten every node's cap so the top of the range only fits via
        // gradient accumulation.
        let cluster = ClusterSpec::new(
            "tight",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        let mut input = SolverInput::from_ground_truth(&cluster, &JobSpec::resnet50_imagenet());
        for node in input.nodes.iter_mut() {
            node.max_batch = Some(100);
        }
        let mut s = OptPerfSolver::new(input.clone());
        // Without accumulation the engine cannot reach past 300.
        let mut plain = GoodputEngine::new(64, 64, 2048);
        let sel = plain.select(&mut s, 1e9).unwrap();
        assert!(sel.total <= 300, "plain engine capped at {}", sel.total);
        assert_eq!(sel.accumulation, 1);
        // With accumulation, enormous noise pushes it beyond the caps.
        let mut accum = GoodputEngine::new(64, 64, 2048).with_accumulation(8);
        let sel = accum.select(&mut s, 1e9).unwrap();
        assert!(sel.total > 300, "accumulation should unlock large batches: {}", sel.total);
        assert!(sel.accumulation > 1);
        // The micro-plan respects the caps and multiplies back to the total.
        assert!(sel.plan.local_batches.iter().all(|&b| b <= 100));
        assert_eq!(sel.plan.local_batches.iter().sum::<u64>() * sel.accumulation, sel.total);
    }

    #[test]
    fn accumulation_is_never_preferred_when_plain_fits() {
        // With generous caps the accumulated variant is strictly slower
        // (extra compute passes, same sync), so it must not be selected.
        let mut s = solver();
        let mut engine = GoodputEngine::new(64, 64, 2048).with_accumulation(4);
        let sel = engine.select(&mut s, 800.0).unwrap();
        assert_eq!(sel.accumulation, 1, "plain batches fit; accumulation must stay off");
    }

    #[test]
    fn selected_batch_maximizes_goodput_over_grid() {
        let mut s = solver();
        let mut engine = GoodputEngine::new(64, 64, 4096);
        let phi = 900.0;
        let sel = engine.select(&mut s, phi).unwrap();
        // No other candidate achieves materially better goodput when
        // solved exactly.
        for total in engine.candidates() {
            let Ok(plan) = s.solve(total) else {
                continue; // above the memory caps
            };
            let g = goodput(phi, 64, total, plan.opt_perf);
            assert!(g <= sel.goodput * 1.01, "candidate {total} goodput {g} beats selection {}", sel.goodput);
        }
    }
}
