//! Cross-crate integration tests: the full Cannikin pipeline (simulator →
//! analyzer → solver → goodput engine → trainer) against the baselines on
//! the paper's clusters.

use cannikin::baselines::{AdaptdlTrainer, DdpTrainer, LbBspTrainer};
use cannikin::core::engine::{CannikinTrainer, LinearNoiseGrowth, NoiseModel, TrainerConfig};
use cannikin::core::optperf::{OptPerfSolver, SolverInput};
use cannikin::core::perf::MeasurementAggregation;
use cannikin::sim::Simulator;
use cannikin::workloads::{clusters, profiles};

fn noise(profile: &cannikin::workloads::WorkloadProfile) -> Box<dyn NoiseModel> {
    Box::new(LinearNoiseGrowth { initial: profile.noise.initial, rate: profile.noise.rate })
}

#[test]
fn cannikin_run_invariants_on_cluster_b() {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 71);
    let config = TrainerConfig::new(profile.dataset_size, 64, profile.max_batch);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
    let records = trainer.run_epochs(30).expect("run");

    for r in &records {
        assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch, "epoch {}", r.epoch);
        assert!(r.total_batch <= profile.max_batch);
        assert!(r.local_batches.iter().all(|&b| b >= 1));
        assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-12);
        assert!(r.epoch_time > 0.0);
    }
    for pair in records.windows(2) {
        assert!(pair[1].effective_epochs > pair[0].effective_epochs);
        assert!(pair[1].cumulative_time > pair[0].cumulative_time);
    }
    // The model must engage early and stay engaged.
    assert!(records[2].used_model);
    assert!(records.iter().skip(2).filter(|r| r.used_model).count() >= 26);
    // Same-type GPUs must receive near-identical shares once modeled.
    let last = records.last().unwrap();
    for i in 1..4 {
        assert!(last.local_batches[i].abs_diff(last.local_batches[0]) <= 2, "{:?}", last.local_batches);
    }
    // A100s beat RTX6000s by roughly their speed ratio.
    assert!(last.local_batches[0] > last.local_batches[8] * 2, "{:?}", last.local_batches);
}

#[test]
fn learned_models_converge_to_ground_truth() {
    let profile = profiles::imagenet_resnet50();
    let cluster = clusters::cluster_a();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 72);
    let config = TrainerConfig::new(12_800, 128, 1024);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
    trainer.run_epochs(10).expect("run");

    let oracle = Simulator::new(cluster, profile.job.clone(), 0);
    for node in 0..3 {
        let learned = trainer.analyzer().node_model(node).expect("model ready");
        let truth = oracle.true_coefficients(node);
        assert!((learned.q / truth.q - 1.0).abs() < 0.15, "node {node} q: {} vs {}", learned.q, truth.q);
        assert!((learned.k / truth.k - 1.0).abs() < 0.15, "node {node} k: {} vs {}", learned.k, truth.k);
    }
    let (t_comm, _, _) = oracle.true_comm();
    assert!((trainer.analyzer().t_comm().expect("comm") / t_comm - 1.0).abs() < 0.1);
}

#[test]
fn cannikin_beats_every_baseline_on_cifar_cluster_b() {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let target = profile.target_effective_epochs();

    let sim = || Simulator::new(cluster.clone(), profile.job.clone(), 73);
    let config = TrainerConfig::new(profile.dataset_size, 64, profile.max_batch);
    let mut cannikin = CannikinTrainer::builder()
        .simulator(sim())
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
    let t_cannikin = cannikin.train_until(target, 3000).expect("run").last().unwrap().cumulative_time;

    let mut adaptdl = AdaptdlTrainer::new(sim(), noise(&profile), profile.dataset_size, 64, profile.max_batch);
    let t_adaptdl = adaptdl.train_until(target, 3000).last().unwrap().cumulative_time;

    let mut ddp = DdpTrainer::new(sim(), noise(&profile), profile.dataset_size, 64, 64);
    let t_ddp = ddp.train_until(target, 3000).last().unwrap().cumulative_time;

    let mut lbbsp = LbBspTrainer::new(sim(), noise(&profile), profile.dataset_size, 64, 64);
    let t_lbbsp = lbbsp.train_until(target, 3000).last().unwrap().cumulative_time;

    assert!(t_cannikin < t_adaptdl, "vs AdaptDL: {t_cannikin} vs {t_adaptdl}");
    assert!(t_cannikin < t_ddp * 0.35, "vs DDP: {t_cannikin} vs {t_ddp}");
    assert!(t_cannikin < t_lbbsp * 0.35, "vs LB-BSP: {t_cannikin} vs {t_lbbsp}");
}

#[test]
fn ivw_ablation_matters_under_biased_observers() {
    // §5.3 end to end: the same run with naive measurement aggregation
    // produces a worse-calibrated communication model on cluster A (whose
    // slow nodes over-report comm times).
    let profile = profiles::imagenet_resnet50();
    let cluster = clusters::cluster_a();
    let oracle = Simulator::new(cluster.clone(), profile.job.clone(), 0);
    let (t_comm_true, _, _) = oracle.true_comm();

    let mut errs = Vec::new();
    for aggregation in [MeasurementAggregation::InverseVariance, MeasurementAggregation::NaiveMean] {
        let sim = Simulator::new(cluster.clone(), profile.job.clone(), 74);
        let mut config = TrainerConfig::new(12_800, 128, 1024);
        config.aggregation = aggregation;
        let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
        trainer.run_epochs(6).expect("run");
        errs.push((trainer.analyzer().t_comm().expect("comm") - t_comm_true).abs() / t_comm_true);
    }
    assert!(errs[0] < errs[1], "ivw {} vs naive {}", errs[0], errs[1]);
    assert!(errs[0] < 0.05, "ivw error {}", errs[0]);
    assert!(errs[1] > 0.08, "naive error should be visibly biased: {}", errs[1]);
}

#[test]
fn contention_change_is_absorbed_within_a_few_epochs() {
    // The §6 dynamic-resources scenario end to end.
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_c_default();
    let sim = Simulator::new(cluster, profile.job.clone(), 75);
    let mut config = TrainerConfig::new(50_000, 512, 512);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
    let before = trainer.run_epochs(6).expect("run");
    let share_before = *before.last().unwrap().local_batches.last().unwrap();

    trainer.simulator_mut().set_contention(15, 1.0);
    let after = trainer.run_epochs(6).expect("run");
    let share_after = *after.last().unwrap().local_batches.last().unwrap();
    assert!(
        share_after as f64 > share_before as f64 * 2.0,
        "node 15's share should grow after contention release: {share_before} -> {share_after}"
    );
}

#[test]
fn oracle_solver_and_trainer_agree_at_convergence() {
    // After enough epochs the learned plan's batch time approaches the
    // oracle OptPerf for the same total batch.
    let profile = profiles::imagenet_resnet50();
    let cluster = clusters::cluster_a();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 76);
    let mut config = TrainerConfig::new(128 * 50, 128, 128);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise(&profile))
        .config(config)
        .build()
        .expect("valid config");
    let records = trainer.run_epochs(8).expect("run");

    let mut oracle = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
    let oracle_sim = Simulator::new(cluster, profile.job.clone(), 0).with_noise(0.0, 0.0);
    let opt = oracle_sim.ideal_batch_time(&oracle.solve(128).expect("feasible").local_batches);
    let last = records.last().unwrap();
    assert!(
        (last.mean_batch_time - opt).abs() / opt < 0.05,
        "trainer {} vs oracle OptPerf {opt}",
        last.mean_batch_time
    );
}
