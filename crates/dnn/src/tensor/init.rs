//! Random tensor initializers.

use super::Tensor;
use crate::rng;

impl Tensor {
    /// Standard-normal initialization with a deterministic seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use minidnn::tensor::Tensor;
    /// let a = Tensor::randn(&[3, 3], 7);
    /// let b = Tensor::randn(&[3, 3], 7);
    /// assert_eq!(a, b);
    /// ```
    pub fn randn(shape: &[usize], seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng::normal(&mut r)).collect();
        Tensor::from_vec(data, shape).expect("randn shape")
    }

    /// Kaiming/He initialization for a layer with `fan_in` inputs:
    /// `N(0, sqrt(2 / fan_in))`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming(shape: &[usize], fan_in: usize, seed: u64) -> Self {
        assert!(fan_in > 0, "fan_in must be positive");
        let std = (2.0 / fan_in as f32).sqrt();
        Self::randn(shape, seed).scale(std)
    }

    /// Xavier/Glorot uniform initialization on `[-limit, limit]` with
    /// `limit = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in + fan_out == 0`.
    pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Self {
        assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let mut r = rng::seeded(seed);
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| {
            use rand::RngExt;
            r.random_range(-limit..limit)
        }).collect();
        Tensor::from_vec(data, shape).expect("xavier shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_statistics() {
        let t = Tensor::randn(&[100, 100], 3);
        let mean = t.mean();
        let var = t.map(|x| x * x).mean() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kaiming_scales_variance() {
        let t = Tensor::kaiming(&[64, 256], 256, 5);
        let var = t.map(|x| x * x).mean();
        let expected = 2.0 / 256.0;
        assert!((var / expected - 1.0).abs() < 0.15, "var {var} vs {expected}");
    }

    #[test]
    fn xavier_within_limit() {
        let fan_in = 30;
        let fan_out = 10;
        let limit = (6.0f32 / 40.0).sqrt();
        let t = Tensor::xavier(&[fan_in, fan_out], fan_in, fan_out, 6);
        assert!(t.data().iter().all(|&x| x >= -limit && x < limit));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Tensor::randn(&[4, 4], 1), Tensor::randn(&[4, 4], 2));
    }
}
