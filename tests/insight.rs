//! End-to-end insight round trip (ISSUE 3 acceptance): a monitored
//! `hetsim` run with a mid-training contention injection must flag the
//! straggler within 3 steps, the engine's forced re-profile must move the
//! split back toward the ground-truth OptPerf optimum, and replaying the
//! exported JSONL trace offline must reproduce the online anomaly
//! verdicts byte-for-byte.
//!
//! Single test function: the telemetry recorder is process-global, and
//! this binary is its own process.

use cannikin::core::engine::{CannikinTrainer, LinearNoiseGrowth, TrainerConfig};
use cannikin::core::optperf::{OptPerfSolver, SolverInput};
use cannikin::insight::{replay, InsightConfig, Monitor};
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::{ClusterSpec, NodeSpec};
use cannikin::sim::job::JobSpec;
use cannikin::sim::Simulator;
use cannikin::telemetry::{self as telemetry, export, AnomalyKind};

#[test]
fn straggler_roundtrip_detect_replan_replay() {
    let cluster = ClusterSpec::new(
        "insight-rt",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    );
    // Compute-heavy job so the split visibly tracks per-node speed.
    let job = JobSpec::resnet50_imagenet();
    let sim = Simulator::new(cluster, job.clone(), 12);
    let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 1.0 });
    let mut config = TrainerConfig::new(20_000, 128, 1024);
    config.adaptive_batch = false;
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(noise)
        .config(config)
        .build()
        .expect("valid config");

    let monitor = Monitor::install(InsightConfig::default());
    trainer.attach_monitor(monitor.clone());
    let session = telemetry::Session::start();

    // ---- Healthy phase: bootstrap, then the solver split settles. ----
    let healthy = trainer.run_epochs(5).expect("healthy run");
    assert!(
        monitor.report().anomalies.iter().all(|a| a.kind != AnomalyKind::Straggler),
        "no straggler may fire on a healthy run: {:?}",
        monitor.report().anomalies
    );
    let healthy_share = healthy.last().unwrap().local_batches[0];

    // ---- Inject contention: the A100 loses 60% of its compute (§6). ----
    trainer.simulator_mut().set_contention(0, 0.4);
    let degraded = trainer.run_epochs(5).expect("degraded run");

    let report = trainer.health().expect("monitor attached");
    let stragglers: Vec<_> =
        report.anomalies.iter().filter(|a| a.kind == AnomalyKind::Straggler).collect();
    let first = stragglers.first().expect("contention must be flagged");
    assert_eq!(first.node, Some(0), "the slowed node is the straggler");
    assert!(first.step < 3, "detected at step {} — must fire within 3 steps", first.step);
    assert_eq!(report.straggling_nodes, vec![0]);
    assert!(!report.healthy());

    // The forced re-profile: the epoch after detection drops back to the
    // bootstrap path, then the model re-engages on the slowed coefficients.
    assert!(degraded[0].used_model, "epoch 5 still trusts the (stale) model");
    assert!(!degraded[1].used_model, "epoch 6 must re-profile after the reset");
    assert!(degraded.last().unwrap().used_model, "model must re-engage by epoch 9");

    // The split moves from the stale share toward the ground-truth OptPerf
    // optimum of the *contended* cluster.
    let truth = SolverInput::from_ground_truth(trainer.simulator_mut().cluster(), &job);
    let optimal = OptPerfSolver::new(truth).solve(128).expect("feasible").local_batches;
    let final_share = degraded.last().unwrap().local_batches[0];
    assert!(
        final_share < healthy_share,
        "node 0's share must shrink: {healthy_share} -> {final_share} (optimal {})",
        optimal[0]
    );
    assert!(
        final_share.abs_diff(optimal[0]) < healthy_share.abs_diff(optimal[0]),
        "split must move toward the OptPerf optimum: healthy {healthy_share}, final {final_share}, optimal {}",
        optimal[0]
    );

    // ---- Export the trace and replay it offline. ----
    let records = session.drain();
    drop(session);
    let dir = std::env::temp_dir().join("cannikin-insight-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.jsonl");
    export::write_jsonl(&path, &records).expect("export");

    let text = std::fs::read_to_string(&path).expect("read trace");
    let parsed = export::parse_jsonl(&text).expect("parse trace");
    assert_eq!(parsed.len(), records.len(), "JSONL round trip preserves every record");

    let rerun = replay::analyze(&parsed, InsightConfig::default());
    assert_eq!(
        rerun.online, report.anomalies,
        "the trace carries exactly the anomalies the monitor fired"
    );
    assert!(rerun.anomalies_match(), "offline detectors must reproduce the online verdicts");
    assert_eq!(rerun.offline, report.anomalies);
    let rendered = rerun.render();
    assert!(rendered.contains("agreement: EXACT"), "{rendered}");
    assert!(rendered.contains("straggler"), "{rendered}");
}
