//! Uniform drive adapter over every epoch-oriented trainer.
//!
//! The scenario-matrix harness (`cannikin-bench`) needs to drive Cannikin
//! and every baseline through the same loop — construct, step epochs,
//! read statistical progress — without caring which system is behind the
//! handle. [`TrainingSubject`] is that adapter: one fallible `next_epoch`
//! (Cannikin's solver can reject a misconfigured batch range; the
//! baselines never fail) plus a `progress` accessor, with the
//! run-to-target loop provided once instead of re-implemented per system.
//!
//! `cannikin-core` implements it for [`CannikinTrainer`];
//! `cannikin-baselines` implements it for the AdaptDL, DDP, LB-BSP and
//! HetPipe trainers.

use super::{CannikinTrainer, EpochRecord};
use crate::error::CannikinError;

/// An epoch-oriented training system drivable by a generic harness.
pub trait TrainingSubject {
    /// Advance one epoch and return its record.
    ///
    /// # Errors
    ///
    /// Implementations whose planner can fail (Cannikin's OptPerf solver
    /// on an infeasible batch range) propagate that error; baselines are
    /// infallible and always return `Ok`.
    fn next_epoch(&mut self) -> Result<EpochRecord, CannikinError>;

    /// Cumulative statistically-effective epochs of progress so far.
    fn progress(&self) -> f64;

    /// Drive until `target` effective epochs are reached or `max_epochs`
    /// have run, whichever comes first.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainingSubject::next_epoch`] failure.
    fn drive_until(&mut self, target: f64, max_epochs: usize) -> Result<Vec<EpochRecord>, CannikinError> {
        let mut records = Vec::new();
        while self.progress() < target && records.len() < max_epochs {
            records.push(self.next_epoch()?);
        }
        Ok(records)
    }
}

impl TrainingSubject for CannikinTrainer {
    fn next_epoch(&mut self) -> Result<EpochRecord, CannikinError> {
        self.run_epoch()
    }

    fn progress(&self) -> f64 {
        self.effective_epochs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinearNoiseGrowth, TrainerConfig};
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::Simulator;

    fn subject() -> CannikinTrainer {
        let cluster = ClusterSpec::new(
            "subject",
            vec![NodeSpec::new("a100", Gpu::A100), NodeSpec::new("v100", Gpu::V100)],
        );
        let sim = Simulator::new(cluster, hetsim::job::JobSpec::resnet18_cifar10(), 11);
        CannikinTrainer::builder()
            .simulator(sim)
            .noise(LinearNoiseGrowth { initial: 64.0, rate: 0.5 })
            .config(TrainerConfig::new(1_600, 32, 256))
            .build()
            .expect("valid config")
    }

    #[test]
    fn drive_until_stops_at_target_or_cap() {
        let mut trainer = subject();
        let records = trainer.drive_until(2.0, 40).expect("run");
        assert!(!records.is_empty());
        assert!(records.len() <= 40);
        let trait_progress = TrainingSubject::progress(&trainer);
        assert!((trait_progress - trainer.effective_epochs()).abs() < 1e-12);
        if records.len() < 40 {
            assert!(trait_progress >= 2.0, "stopped early only at the target");
        }
    }

    #[test]
    fn next_epoch_matches_run_epoch_records() {
        let mut via_trait = subject();
        let mut direct = subject();
        let a = via_trait.next_epoch().expect("epoch");
        let b = direct.run_epoch().expect("epoch");
        assert_eq!(a.total_batch, b.total_batch);
        assert_eq!(a.local_batches, b.local_batches);
        assert_eq!(a.epoch_time.to_bits(), b.epoch_time.to_bits());
    }
}
