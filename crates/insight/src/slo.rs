//! The SLO engine: evaluates declarative [`SloRule`]s against the event
//! stream, online (as a recorder [`Subscriber`]) and offline (over a
//! drained trace), with byte-identical verdicts.
//!
//! ## Determinism contract
//!
//! The engine reacts to a *closed* input set — the `fleet_goodput` and
//! `fleet_fairness` counters, `JobAdmitted`, node-crash
//! `FaultInjected` and group-shrink/replan `RecoveryAction` records —
//! and every judged value is a pure function of that sequence. Record
//! timestamps are never read (they are wall-clock and differ between
//! same-seed runs); a violation's `at` field is the ordinal of the
//! triggering observation within the rule's input stream instead.
//!
//! Records *injected* into the stream (previous [`SloViolation`]s,
//! `AnomalyDetected`, the `insight_anomalies` counter) are ignored: the
//! recorder delivers injected records to the sink but not to online
//! subscribers, so an engine that reacted to them could never agree with
//! its offline rerun over the drained trace.
//!
//! Floor/ceiling rules over running aggregates (goodput, fairness, queue
//! p95) fire on *crossings* — the first observation that enters violation
//! after a healthy one — so a persistently-degraded metric produces one
//! violation, not one per tick. Per-event rules (a single admission over
//! its job's ceiling, a single slow crash recovery) fire per offending
//! event.

use cannikin_telemetry::{
    self as telemetry, Event, FaultKind, Record, RecoveryKind, SloRule, SloViolation, Subscriber,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Evaluates a rule set against a record sequence. Feed records in
/// emission order via [`SloEngine::observe`]; equal sequences produce
/// equal violation sequences.
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    only_rank: Option<u32>,
    /// Per-rule "currently violating" flag (crossing detection).
    violating: Vec<bool>,
    /// Admission waits so far, kept sorted for the nearest-rank p95.
    sorted_waits: Vec<f64>,
    admissions: u64,
    goodput_samples: u64,
    fairness_samples: u64,
    recoveries: u64,
    /// Step of the most recent unrecovered node crash.
    pending_crash: Option<u64>,
}

impl SloEngine {
    /// An engine over `rules`. With `only_rank` set, records from other
    /// ranks are ignored (the same filter the fleet bench applies when
    /// several tests share the process-global recorder).
    pub fn new(rules: Vec<SloRule>, only_rank: Option<u32>) -> SloEngine {
        let violating = vec![false; rules.len()];
        SloEngine {
            rules,
            only_rank,
            violating,
            sorted_waits: Vec::new(),
            admissions: 0,
            goodput_samples: 0,
            fairness_samples: 0,
            recoveries: 0,
            pending_crash: None,
        }
    }

    /// The rules the engine evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Feed one record; returns the violations it triggered (usually
    /// empty).
    pub fn observe(&mut self, record: &Record) -> Vec<SloViolation> {
        if self.only_rank.is_some_and(|r| r != record.rank) {
            return Vec::new();
        }
        match &record.event {
            Event::Counter(c) if c.name == "fleet_goodput" => {
                // Zero goodput before any job finishes an epoch is "no
                // data yet", not a breach.
                if c.value > 0.0 {
                    self.goodput_samples += 1;
                    let at = self.goodput_samples;
                    self.judge_crossings(|rule| matches!(rule, SloRule::GoodputFloor { .. }), c.value, at, |v, t| v < t)
                } else {
                    Vec::new()
                }
            }
            Event::Counter(c) if c.name == "fleet_fairness" => {
                self.fairness_samples += 1;
                let at = self.fairness_samples;
                self.judge_crossings(|rule| matches!(rule, SloRule::FairnessFloor { .. }), c.value, at, |v, t| v < t)
            }
            Event::JobAdmitted(a) => {
                self.admissions += 1;
                let at = self.admissions;
                let idx = self.sorted_waits.partition_point(|&w| w <= a.queued_s);
                self.sorted_waits.insert(idx, a.queued_s);
                let p95 = nearest_rank(&self.sorted_waits, 0.95);
                let mut fired =
                    self.judge_crossings(|rule| matches!(rule, SloRule::QueueP95Ceiling { .. }), p95, at, |v, t| v > t);
                // Per-admission job ceilings fire per offending event.
                for rule in &self.rules {
                    if let SloRule::JobQueueCeiling { job, ceiling_s } = rule {
                        if *job == a.job && a.queued_s > *ceiling_s {
                            fired.push(SloViolation {
                                rule: rule.id().to_string(),
                                job: Some(job.clone()),
                                threshold: *ceiling_s,
                                observed: a.queued_s,
                                at,
                            });
                        }
                    }
                }
                fired
            }
            Event::FaultInjected(f) if f.kind == FaultKind::NodeCrash => {
                self.pending_crash = Some(f.step);
                Vec::new()
            }
            Event::RecoveryAction(r)
                if matches!(r.kind, RecoveryKind::GroupShrink | RecoveryKind::Replan) =>
            {
                let Some(crash_step) = self.pending_crash.take() else {
                    return Vec::new();
                };
                self.recoveries += 1;
                let at = self.recoveries;
                // Steps index within an epoch, so a recovery that lands in
                // the next epoch can read lower than the crash; saturating
                // to 0 treats that (sub-epoch) distance as immediate.
                let observed = r.step.saturating_sub(crash_step) as f64;
                let mut fired = Vec::new();
                for rule in &self.rules {
                    if let SloRule::RecoveryCeiling { max_steps } = rule {
                        if observed > *max_steps as f64 {
                            fired.push(SloViolation {
                                rule: rule.id().to_string(),
                                job: None,
                                threshold: *max_steps as f64,
                                observed,
                                at,
                            });
                        }
                    }
                }
                fired
            }
            _ => Vec::new(),
        }
    }

    /// Crossing detection over every rule matched by `select`: fire when a
    /// previously-healthy rule's `breach(observed, threshold)` turns true,
    /// reset silently when it turns false.
    fn judge_crossings(
        &mut self,
        select: impl Fn(&SloRule) -> bool,
        observed: f64,
        at: u64,
        breach: impl Fn(f64, f64) -> bool,
    ) -> Vec<SloViolation> {
        let mut fired = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if !select(rule) {
                continue;
            }
            let now = breach(observed, rule.threshold());
            if now && !self.violating[i] {
                fired.push(SloViolation {
                    rule: rule.id().to_string(),
                    job: None,
                    threshold: rule.threshold(),
                    observed,
                    at,
                });
            }
            self.violating[i] = now;
        }
        fired
    }
}

/// Nearest-rank quantile over an already-sorted slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct SloState {
    engine: SloEngine,
    violations: Vec<SloViolation>,
    fresh: Vec<SloViolation>,
}

struct SloInner {
    state: Mutex<SloState>,
}

impl Subscriber for SloInner {
    fn on_records(&self, batch: &[Record]) {
        let mut state = self.state.lock();
        for record in batch {
            for violation in state.engine.observe(record) {
                // `inject`, not `emit`: callbacks may run during a
                // thread-exit flush, and injected records must not loop
                // back through subscribers (see the module docs).
                telemetry::inject(record.node, record.rank, Event::SloViolation(violation.clone()));
                state.violations.push(violation.clone());
                state.fresh.push(violation);
            }
        }
    }
}

/// The live SLO tap: runs an [`SloEngine`] over every flushed batch and
/// injects violations back into the stream as typed [`SloViolation`]
/// records, so exported traces carry the online verdicts. Cheap to clone;
/// the subscription lasts until the last clone drops.
#[derive(Clone)]
pub struct SloMonitor {
    inner: Arc<SloInner>,
    _guard: Arc<telemetry::SubscriberGuard>,
}

impl SloMonitor {
    /// Register a monitor over `rules`, observing every rank.
    pub fn install(rules: Vec<SloRule>) -> SloMonitor {
        SloMonitor::install_with(rules, None)
    }

    /// Register with a rank filter (shared-recorder test isolation).
    pub fn install_with(rules: Vec<SloRule>, only_rank: Option<u32>) -> SloMonitor {
        let inner = Arc::new(SloInner {
            state: Mutex::new(SloState {
                engine: SloEngine::new(rules, only_rank),
                violations: Vec::new(),
                fresh: Vec::new(),
            }),
        });
        let guard = telemetry::subscribe(inner.clone() as Arc<dyn Subscriber>);
        SloMonitor { inner, _guard: Arc::new(guard) }
    }

    /// Violations since the previous call. Call
    /// `telemetry::flush_thread()` first so buffered events have reached
    /// the engine.
    pub fn drain_new(&self) -> Vec<SloViolation> {
        std::mem::take(&mut self.inner.state.lock().fresh)
    }

    /// Every violation since installation, in detection order.
    pub fn violations(&self) -> Vec<SloViolation> {
        self.inner.state.lock().violations.clone()
    }
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        write!(f, "SloMonitor({} rules, {} violations)", state.engine.rules.len(), state.violations.len())
    }
}

/// The offline verdicts next to the online ones found in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The rules evaluated.
    pub rules: Vec<SloRule>,
    /// Violations from rerunning the engine over the trace.
    pub offline: Vec<SloViolation>,
    /// `SloViolation` records found *in* the trace (the online verdicts).
    pub online: Vec<SloViolation>,
}

impl SloReport {
    /// Whether the offline rerun reproduced the online verdicts exactly.
    /// Vacuously true for traces recorded without a live [`SloMonitor`]
    /// (no online records at all) only when offline found nothing either.
    pub fn verdicts_match(&self) -> bool {
        self.offline == self.online
    }

    /// Offline violation count for one rule id (compliance tables).
    pub fn count_for(&self, rule_id: &str, job: Option<&str>) -> usize {
        self.offline.iter().filter(|v| v.rule == rule_id && v.job.as_deref() == job).count()
    }

    /// A short text rendering (the CLI's SLO section).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slo: {} rules, {} offline / {} online violations ({})",
            self.rules.len(),
            self.offline.len(),
            self.online.len(),
            if self.verdicts_match() { "verdicts agree" } else { "VERDICT MISMATCH" }
        );
        for rule in &self.rules {
            let n = self.count_for(rule.id(), rule.job());
            let _ = writeln!(
                out,
                "  [{}] {} — {}",
                if n == 0 { "ok" } else { "violated" },
                rule.describe(),
                if n == 0 { "0 violations".to_string() } else { format!("{n} violations") }
            );
        }
        for v in &self.offline {
            let _ = writeln!(
                out,
                "  {} at #{}: observed {:.4} vs threshold {:.4}{}",
                v.rule,
                v.at,
                v.observed,
                v.threshold,
                v.job.as_deref().map_or_else(String::new, |j| format!(" (job {j})"))
            );
        }
        out
    }
}

/// Rerun the rules over a drained/parsed trace and collect the online
/// verdicts stored in it. The engine ignores `SloViolation` records, so
/// feeding a trace that already carries online verdicts is safe.
pub fn replay_slos(records: &[Record], rules: &[SloRule]) -> SloReport {
    let mut engine = SloEngine::new(rules.to_vec(), None);
    let mut offline = Vec::new();
    let mut online = Vec::new();
    for record in records {
        if let Event::SloViolation(v) = &record.event {
            online.push(v.clone());
        }
        offline.extend(engine.observe(record));
    }
    SloReport { rules: rules.to_vec(), offline, online }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cannikin_telemetry::{Counter, FaultInjected, JobAdmitted, RecoveryAction, Session};

    fn rec(event: Event) -> Record {
        Record { ts_ns: 0, node: 0, rank: 0, event }
    }

    fn goodput(value: f64) -> Record {
        rec(Event::Counter(Counter { name: "fleet_goodput".into(), value }))
    }

    fn admitted(job: &str, queued_s: f64) -> Record {
        rec(Event::JobAdmitted(JobAdmitted { job: job.into(), nodes: 2, queued_s }))
    }

    #[test]
    fn goodput_floor_fires_on_crossings_only() {
        let mut engine = SloEngine::new(vec![SloRule::GoodputFloor { floor: 1.0 }], None);
        let mut fired = Vec::new();
        for v in [5.0, 0.5, 0.4, 5.0, 0.3] {
            fired.extend(engine.observe(&goodput(v)));
        }
        assert_eq!(fired.len(), 2, "one violation per excursion, not per sample: {fired:?}");
        assert_eq!(fired[0].at, 2);
        assert_eq!(fired[0].observed, 0.5);
        assert_eq!(fired[1].at, 5);
        // Zero samples (no progress yet) are not judged.
        let mut quiet = SloEngine::new(vec![SloRule::GoodputFloor { floor: 1.0 }], None);
        assert!(quiet.observe(&goodput(0.0)).is_empty());
    }

    #[test]
    fn queue_p95_and_per_job_ceilings() {
        let rules = vec![
            SloRule::QueueP95Ceiling { ceiling_s: 10.0 },
            SloRule::JobQueueCeiling { job: "bert".into(), ceiling_s: 2.0 },
        ];
        let mut engine = SloEngine::new(rules, None);
        assert!(engine.observe(&admitted("cifar", 1.0)).is_empty());
        // bert waits 5 s: under the p95 ceiling, over its own 2 s ceiling.
        let fired = engine.observe(&admitted("bert", 5.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "job_queue_ceiling");
        assert_eq!(fired[0].job.as_deref(), Some("bert"));
        assert_eq!(fired[0].at, 2);
        // A 50 s wait pushes the p95 (max of 3 samples) over 10 s.
        let fired = engine.observe(&admitted("cifar", 50.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "queue_p95_ceiling");
        assert_eq!(fired[0].observed, 50.0);
    }

    #[test]
    fn recovery_ceiling_measures_crash_to_shrink_distance() {
        let mut engine = SloEngine::new(vec![SloRule::RecoveryCeiling { max_steps: 3 }], None);
        let crash = |step| {
            rec(Event::FaultInjected(FaultInjected {
                kind: FaultKind::NodeCrash,
                node: Some(1),
                step,
                attempts: 1,
                magnitude: 0.0,
            }))
        };
        let shrink = |step| {
            rec(Event::RecoveryAction(RecoveryAction {
                kind: RecoveryKind::GroupShrink,
                node: Some(1),
                step,
                attempt: 0,
                backoff_ns: 0,
            }))
        };
        assert!(engine.observe(&crash(10)).is_empty());
        assert!(engine.observe(&shrink(12)).is_empty(), "2 steps <= ceiling");
        assert!(engine.observe(&crash(20)).is_empty());
        let fired = engine.observe(&shrink(30));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].observed, 10.0);
        assert_eq!(fired[0].at, 2);
        // A shrink without a pending crash (e.g. a scheduled leave) is ignored.
        assert!(engine.observe(&shrink(31)).is_empty());
    }

    #[test]
    fn replay_reproduces_online_verdicts_and_detects_tampering() {
        let rules = vec![SloRule::GoodputFloor { floor: 1.0 }];
        // Build the trace the way the online path would: engine-fired
        // violations appear as records after their trigger.
        let mut engine = SloEngine::new(rules.clone(), None);
        let mut trace = Vec::new();
        for v in [5.0, 0.2, 4.0] {
            let r = goodput(v);
            let fired = engine.observe(&r);
            trace.push(r);
            trace.extend(fired.into_iter().map(|v| rec(Event::SloViolation(v))));
        }
        let report = replay_slos(&trace, &rules);
        assert_eq!(report.offline.len(), 1);
        assert_eq!(report.online.len(), 1);
        assert!(report.verdicts_match());
        assert_eq!(report.count_for("goodput_floor", None), 1);
        assert!(report.render().contains("verdicts agree"));
        // Drop the online record: the replay notices.
        let stripped: Vec<Record> =
            trace.iter().filter(|r| !matches!(r.event, Event::SloViolation(_))).cloned().collect();
        assert!(!replay_slos(&stripped, &rules).verdicts_match());
    }

    #[test]
    fn monitor_injects_violations_online() {
        // A unique rank isolates this test from others sharing the
        // process-global recorder (sessions are process-exclusive, but
        // foreign threads may still emit into a live session).
        const RANK: u32 = 5151;
        let monitor = SloMonitor::install_with(vec![SloRule::GoodputFloor { floor: 1.0 }], Some(RANK));
        let session = Session::start();
        {
            let _id = telemetry::set_thread_identity(3, RANK);
            telemetry::emit(Event::Counter(Counter { name: "fleet_goodput".into(), value: 8.0 }));
            telemetry::emit(Event::Counter(Counter { name: "fleet_goodput".into(), value: 0.25 }));
            telemetry::flush_thread();
        }
        let fresh = monitor.drain_new();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "goodput_floor");
        assert!(monitor.drain_new().is_empty(), "drain_new must not replay");
        assert_eq!(monitor.violations(), fresh);
        let records = session.drain();
        let online: Vec<&SloViolation> = records
            .iter()
            .filter(|r| r.rank == RANK)
            .filter_map(|r| match &r.event {
                Event::SloViolation(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(online.len(), 1);
        assert_eq!(*online[0], fresh[0]);
    }
}
