//! GPU catalog.
//!
//! Relative compute capability is taken from published FP16 throughput
//! (Table 1 of the paper for the data-center parts; vendor datasheets for
//! the workstation parts used in clusters A and B). Absolute numbers do
//! not matter for the reproduction — only ratios between GPUs do, since
//! every result in the paper is either normalized or a relative speedup.

use serde::{Deserialize, Serialize};

/// A GPU model from the paper's evaluation clusters (plus the Table 1
/// evolution parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Gpu {
    /// NVIDIA Tesla P100 (Pascal, 2016) — Table 1.
    P100,
    /// NVIDIA Tesla V100 (Volta, 2017) — Table 1 and cluster B.
    V100,
    /// NVIDIA A100 (Ampere, 2020) — Table 1 and cluster B.
    A100,
    /// NVIDIA H100 (Hopper, 2022) — Table 1.
    H100,
    /// NVIDIA Quadro RTX 6000 — cluster B (8 single-GPU nodes).
    Rtx6000,
    /// NVIDIA RTX A5000 — cluster A.
    RtxA5000,
    /// NVIDIA RTX A4000 — cluster A.
    RtxA4000,
    /// NVIDIA Quadro P4000 — cluster A.
    QuadroP4000,
}

/// Static description of a GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Release year.
    pub year: u16,
    /// Architecture family.
    pub architecture: &'static str,
    /// CUDA core count.
    pub cuda_cores: u32,
    /// On-board memory in GiB.
    pub memory_gb: u32,
    /// Half-precision throughput in TFLOPS — the capability number the
    /// timing model scales by.
    pub fp16_tflops: f64,
}

impl Gpu {
    /// The static spec for this model.
    pub fn spec(self) -> GpuSpec {
        match self {
            Gpu::P100 => GpuSpec { name: "Tesla P100", year: 2016, architecture: "Pascal", cuda_cores: 3584, memory_gb: 16, fp16_tflops: 21.2 },
            Gpu::V100 => GpuSpec { name: "Tesla V100", year: 2017, architecture: "Volta", cuda_cores: 5120, memory_gb: 32, fp16_tflops: 31.4 },
            Gpu::A100 => GpuSpec { name: "A100", year: 2020, architecture: "Ampere", cuda_cores: 6912, memory_gb: 80, fp16_tflops: 77.97 },
            Gpu::H100 => GpuSpec { name: "H100", year: 2022, architecture: "Hopper", cuda_cores: 16896, memory_gb: 80, fp16_tflops: 204.9 },
            // §6: "the fastest GPU, A100, is about 3.42 times faster
            // compared with RTX6000" → 77.97 / 3.42 ≈ 22.8.
            Gpu::Rtx6000 => GpuSpec { name: "Quadro RTX 6000", year: 2018, architecture: "Turing", cuda_cores: 4608, memory_gb: 24, fp16_tflops: 22.8 },
            Gpu::RtxA5000 => GpuSpec { name: "RTX A5000", year: 2021, architecture: "Ampere", cuda_cores: 8192, memory_gb: 24, fp16_tflops: 27.8 },
            Gpu::RtxA4000 => GpuSpec { name: "RTX A4000", year: 2021, architecture: "Ampere", cuda_cores: 6144, memory_gb: 16, fp16_tflops: 19.2 },
            Gpu::QuadroP4000 => GpuSpec { name: "Quadro P4000", year: 2017, architecture: "Pascal", cuda_cores: 1792, memory_gb: 8, fp16_tflops: 5.3 },
        }
    }

    /// FP16 throughput in FLOPS (not TFLOPS).
    pub fn flops(self) -> f64 {
        self.spec().fp16_tflops * 1e12
    }

    /// All catalog entries, in Table 1 order followed by the workstation
    /// parts.
    pub fn all() -> &'static [Gpu] {
        &[
            Gpu::P100,
            Gpu::V100,
            Gpu::A100,
            Gpu::H100,
            Gpu::Rtx6000,
            Gpu::RtxA5000,
            Gpu::RtxA4000,
            Gpu::QuadroP4000,
        ]
    }

    /// The Table 1 "evolution of NVIDIA data center GPUs" rows.
    pub fn table1() -> &'static [Gpu] {
        &[Gpu::P100, Gpu::V100, Gpu::A100, Gpu::H100]
    }
}

impl std::fmt::Display for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_generations_double() {
        // Table 1's headline: each flagship is >2x its predecessor.
        let t1 = Gpu::table1();
        for pair in t1.windows(2) {
            let ratio = pair[1].spec().fp16_tflops / pair[0].spec().fp16_tflops;
            assert!(ratio > 1.4, "{} -> {} ratio {ratio}", pair[0], pair[1]);
        }
        assert!(Gpu::A100.spec().fp16_tflops / Gpu::V100.spec().fp16_tflops > 2.0);
        assert!(Gpu::H100.spec().fp16_tflops / Gpu::A100.spec().fp16_tflops > 2.0);
    }

    #[test]
    fn a100_to_rtx6000_matches_paper_heterogeneity() {
        let ratio = Gpu::A100.spec().fp16_tflops / Gpu::Rtx6000.spec().fp16_tflops;
        assert!((ratio - 3.42).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn display_uses_marketing_name() {
        assert_eq!(Gpu::A100.to_string(), "A100");
        assert_eq!(Gpu::QuadroP4000.to_string(), "Quadro P4000");
    }

    #[test]
    fn all_contains_every_cluster_part() {
        for g in [Gpu::A100, Gpu::V100, Gpu::Rtx6000, Gpu::RtxA5000, Gpu::RtxA4000, Gpu::QuadroP4000] {
            assert!(Gpu::all().contains(&g));
        }
    }
}
