//! # cannikin-telemetry — workspace-wide observability
//!
//! Cannikin is a *measurement-driven* system: per-batch timings feed the
//! OptPerf fits (§3.2), GNS estimates drive the batch-size controller
//! (§4), and Table 6 of the paper quantifies the optimizer's own overhead.
//! This crate is the one place all of those observations flow through:
//!
//! - a global low-overhead [`recorder`]: thread-local event buffers
//!   drained through a `parking_lot`-guarded sink, **off by default** —
//!   the disabled hot path is a single relaxed atomic load (measured by
//!   `crates/bench/benches/telemetry.rs`);
//! - typed [`event`]s for the quantities the paper reasons about:
//!   [`StepTiming`], [`SplitDecision`], [`GnsEstimated`], [`GoodputEval`],
//!   [`AllReduceBucket`], [`SolverInvocation`], plus generic counters and
//!   `B`/`E` spans;
//! - a fixed-bucket [`Histogram`] with quantile queries and merging, for
//!   summarizing drained runs;
//! - a ring-buffer time-[`series`] store (labelled counters/gauges/
//!   histograms, windowed aggregates, quantiles, Prometheus-style text
//!   exposition) fed by a [`SeriesRecorder`] subscriber, plus the
//!   declarative [`slo`] rule specs that `cannikin-insight` evaluates;
//! - two [`export`]ers: JSONL for offline analysis and Chrome
//!   `trace_event` JSON (`pid` = node, `tid` = rank) loadable in
//!   `chrome://tracing` / Perfetto;
//! - the shared simulator/analyzer observation records in [`trace`]
//!   (re-exported by `hetsim` for compatibility);
//! - the `CANNIKIN_TELEMETRY=jsonl:/path[,chrome:/path]` [`mod@env`] knob.
//!
//! ## Example
//!
//! ```
//! use cannikin_telemetry::{self as telemetry, Event, Counter};
//!
//! let session = telemetry::Session::start();
//! {
//!     let _epoch = telemetry::span("epoch");
//!     telemetry::emit(Event::Counter(Counter { name: "epoch_time_s".into(), value: 1.5 }));
//! }
//! let records = session.drain();
//! assert_eq!(records.len(), 3); // span begin + counter + span end
//! let jsonl = telemetry::export::jsonl_string(&records);
//! assert_eq!(jsonl.lines().count(), 3);
//! ```

pub mod env;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod series;
pub mod slo;
pub mod trace;

pub use env::{export_from_env, export_to, parse_targets, ExportTarget};
pub use event::{
    AllReduceBucket, AnomalyDetected, AnomalyKind, Counter, Event, FaultInjected, FaultKind, FleetDecision,
    FleetJobSample, GnsEstimated, GoodputEval, JobAdmitted, JobPreempted, NodeGranted, PolicyDecision, PreemptKind,
    Record, RecoveryAction, RecoveryKind, SloViolation, SolverInvocation, Span, SplitDecision, SplitSource,
    StepTiming,
};
pub use hist::{Histogram, LayoutMismatch};
pub use series::{Labels, SeriesRecorder, SeriesStore, WindowStats};
pub use slo::{default_fleet_slos, SloRule};
pub use json::Json;
pub use recorder::{
    counter, emit, enabled, flush_thread, inject, session_tag, set_thread_identity, span, subscribe, IdentityGuard,
    Session, SpanGuard, Subscriber, SubscriberGuard,
};
