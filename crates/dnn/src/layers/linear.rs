//! Fully-connected layer.

use super::{Layer, Param};
use crate::tensor::{gemm_at_b, matmul, matmul_a_bt, Tensor};

/// A fully-connected layer: `y = x W + b`, `x: [batch, in]`,
/// `W: [in, out]`, `b: [out]`.
///
/// # Examples
///
/// ```
/// use minidnn::layers::{Layer, Linear};
/// use minidnn::tensor::Tensor;
///
/// let mut fc = Linear::new(3, 5, 42);
/// let y = fc.forward(&Tensor::randn(&[2, 3], 1), true);
/// assert_eq!(y.shape(), &[2, 5]);
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Create a layer with Kaiming-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "linear dimensions must be positive");
        Linear {
            weight: Param::new(Tensor::kaiming(&[in_features, out_features], in_features, seed), "linear.weight"),
            bias: Param::new(Tensor::zeros(&[out_features]), "linear.bias"),
            input: None,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.cols(), self.in_features, "linear input width {} != {}", x.cols(), self.in_features);
        let x2 = x.clone().reshape(&[x.rows(), self.in_features]);
        let y = matmul(&x2, &self.weight.value).add_row_broadcast(&self.bias.value);
        self.input = Some(x2);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("backward called before forward");
        assert_eq!(grad_out.rows(), x.rows(), "linear backward batch mismatch");
        assert_eq!(grad_out.cols(), self.out_features, "linear backward width mismatch");
        let g2 = grad_out.clone().reshape(&[grad_out.rows(), self.out_features]);
        // dW += xᵀ g (accumulated in place, no temporary), db = Σ_rows g,
        // dx = g Wᵀ
        gemm_at_b(self.in_features, self.out_features, x.rows(), x.data(), g2.data(), self.weight.grad.data_mut(), true);
        self.bias.grad.add_assign(&g2.sum_rows());
        matmul_a_bt(&g2, &self.weight.value)
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: perturb each parameter and compare the
    /// analytic gradient of a scalar loss `sum(y)` to finite differences.
    #[test]
    fn gradient_check_weights() {
        let mut fc = Linear::new(3, 2, 5);
        let x = Tensor::randn(&[4, 3], 6);
        let y = fc.forward(&x, true);
        fc.backward(&Tensor::ones(y.shape()));
        let analytic = fc.weight.grad.clone();

        let eps = 1e-3f32;
        for idx in 0..fc.weight.value.len() {
            let orig = fc.weight.value.data()[idx];
            fc.weight.value.data_mut()[idx] = orig + eps;
            let plus = fc.forward(&x, true).sum();
            fc.weight.value.data_mut()[idx] = orig - eps;
            let minus = fc.forward(&x, true).sum();
            fc.weight.value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 1e-2, "idx {idx}: {numeric} vs {}", analytic.data()[idx]);
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut fc = Linear::new(3, 2, 7);
        let x = Tensor::randn(&[2, 3], 8);
        let y = fc.forward(&x, true);
        let gx = fc.backward(&Tensor::ones(y.shape()));

        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let plus = fc.forward(&xp, true).sum();
            let minus = fc.forward(&xm, true).sum();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_is_row_count() {
        // With grad_out = 1, db = batch size for every output.
        let mut fc = Linear::new(2, 3, 9);
        let x = Tensor::randn(&[5, 2], 10);
        let y = fc.forward(&x, true);
        fc.backward(&Tensor::ones(y.shape()));
        for &g in fc.bias.grad.data() {
            assert_eq!(g, 5.0);
        }
    }

    #[test]
    fn higher_rank_input_is_flattened() {
        let mut fc = Linear::new(6, 2, 11);
        let x = Tensor::randn(&[4, 2, 3], 12);
        let y = fc.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
    }
}
