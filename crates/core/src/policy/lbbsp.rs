//! LB-BSP policy: fixed total batch, Δ-bounded iterative rebalancing.

use super::{EpochPlan, EpochObservation, Policy, PolicyContext};
use crate::error::CannikinError;
use crate::optperf::even_split;
use cannikin_telemetry::SplitSource;

/// The paper's adjustment step Δ = 5 (§5.1 experiments).
pub const DEFAULT_STEP: u64 = 5;

/// LB-BSP iteratively rebalances local batch sizes toward equal *compute*
/// times, moving each node at most Δ samples per adjustment round (§5.1).
///
/// Two structural gaps versus Cannikin, both visible in the figures:
///
/// 1. convergence to the balanced point takes many rounds (Fig. 9: more
///    than ten epochs from an even start, versus Cannikin's three);
/// 2. the balance target ignores communication/computation overlap, so in
///    communication-bound regimes the equal-compute split is not the
///    optimal split (Fig. 10's gap at small batch sizes).
#[derive(Debug)]
pub struct LbBspIterative {
    step: u64,
    local: Vec<u64>,
    last_per_sample: Vec<f64>,
    asked: bool,
}

impl LbBspIterative {
    /// Create an LB-BSP policy with adjustment step Δ.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn new(step: u64) -> Self {
        assert!(step > 0, "adjustment step must be positive");
        LbBspIterative { step, local: Vec::new(), last_per_sample: Vec::new(), asked: false }
    }

    /// The current local split (test/inspection).
    pub fn local_batches(&self) -> &[u64] {
        &self.local
    }

    /// Rescale the current split proportionally onto a new total (the
    /// adaptive-batch experiment of §5.2.2) — LB-BSP then has to re-tune
    /// with Δ-bounded steps.
    ///
    /// # Panics
    ///
    /// Panics if the new total cannot cover every node.
    pub fn set_total(&mut self, total: u64) {
        let n = self.local.len();
        if n == 0 {
            return;
        }
        assert!(total >= n as u64, "total batch must cover every node");
        let old_total: u64 = self.local.iter().sum();
        let mut scaled: Vec<u64> =
            self.local.iter().map(|&b| ((b as f64 / old_total as f64) * total as f64).floor() as u64).collect();
        for b in scaled.iter_mut() {
            *b = (*b).max(1);
        }
        fix_sum(&mut scaled, total);
        self.local = scaled;
    }

    /// One LB-BSP adjustment round: move every node toward the
    /// equal-compute-time split, at most Δ samples each.
    fn adjust(&mut self) {
        if self.last_per_sample.len() != self.local.len() || self.last_per_sample.is_empty() {
            return;
        }
        let total: u64 = self.local.iter().sum();
        let inv_sum: f64 = self.last_per_sample.iter().map(|t| 1.0 / t).sum();
        let target: Vec<f64> =
            self.last_per_sample.iter().map(|t| (1.0 / t) / inv_sum * total as f64).collect();
        // Zero-sum one-sample transfers from over-loaded to under-loaded
        // nodes, each node moving at most Δ samples per round — this keeps
        // the sum invariant without ever exceeding the step bound.
        let mut budget = vec![self.step; self.local.len()];
        loop {
            let giver = (0..self.local.len())
                .filter(|&i| budget[i] > 0 && self.local[i] > 1 && self.local[i] as f64 > target[i] + 0.5)
                .max_by(|&a, &b| (self.local[a] as f64 - target[a]).total_cmp(&(self.local[b] as f64 - target[b])));
            let taker = (0..self.local.len())
                .filter(|&i| budget[i] > 0 && (self.local[i] as f64) < target[i] - 0.5)
                .max_by(|&a, &b| (target[a] - self.local[a] as f64).total_cmp(&(target[b] - self.local[b] as f64)));
            match (giver, taker) {
                (Some(g), Some(t)) if g != t => {
                    self.local[g] -= 1;
                    self.local[t] += 1;
                    budget[g] -= 1;
                    budget[t] -= 1;
                }
                _ => break,
            }
        }
    }
}

impl Policy for LbBspIterative {
    fn name(&self) -> &'static str {
        "lbbsp"
    }

    fn ask(&mut self, ctx: &PolicyContext) -> Result<EpochPlan, CannikinError> {
        let n = ctx.nodes;
        let total = ctx.base_batch;
        let first = !self.asked || self.local.len() != n;
        if first {
            self.local = even_split(total, n);
            self.asked = true;
        } else if self.local.iter().sum::<u64>() != total {
            self.set_total(total);
        }
        Ok(EpochPlan {
            total,
            local: self.local.clone(),
            accumulation: 1,
            source: if first { SplitSource::EvenInit } else { SplitSource::Bootstrap },
            used_model: false,
            pattern: None,
            predicted_t: None,
        })
    }

    fn tell(&mut self, obs: &EpochObservation) {
        self.last_per_sample = obs.per_sample_times.clone();
        self.adjust();
    }

    fn on_membership_change(&mut self, _nodes: usize) {
        // The split is keyed to the old cluster; restart from even.
        self.local.clear();
        self.last_per_sample.clear();
        self.asked = false;
    }
}

/// Repair a split so it sums to `total`, adjusting one sample at a time at
/// the largest (or smallest-above-1) entries.
fn fix_sum(split: &mut [u64], total: u64) {
    let mut sum: u64 = split.iter().sum();
    while sum < total {
        let i = (0..split.len()).max_by_key(|&i| split[i]).expect("non-empty");
        split[i] += 1;
        sum += 1;
    }
    while sum > total {
        let i = (0..split.len()).filter(|&i| split[i] > 1).max_by_key(|&i| split[i]).expect("reducible entry");
        split[i] -= 1;
        sum -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_sum_repairs() {
        let mut s = vec![5, 5, 5];
        fix_sum(&mut s, 17);
        assert_eq!(s.iter().sum::<u64>(), 17);
        fix_sum(&mut s, 12);
        assert_eq!(s.iter().sum::<u64>(), 12);
        let mut tiny = vec![1, 1, 5];
        fix_sum(&mut tiny, 3);
        assert_eq!(tiny, vec![1, 1, 1]);
    }
}
