//! Scenario-matrix evaluation harness (kurobako-style).
//!
//! The registry ([`registry()`]) declares *scenarios* — named cluster
//! conditions seeded from the sim's [`hetsim::FaultPlan`] and the
//! collectives' [`cannikin_collectives::CommFaultPlan`] machinery — and
//! *subjects* — the trainers under evaluation (Cannikin itself, the §5.1
//! baselines, and the real-gradient [`ParallelTrainer`] variants). Both
//! sides carry **capability tags**; a cell of the evaluation matrix
//! exists exactly when the scenario's required capabilities are a subset
//! of the subject's declared ones, so a baseline that cannot survive a
//! crash is never asked to.
//!
//! The runner ([`runner`]) executes every compatible cell deterministically
//! under the pinned [`SCENARIO_SEED`], tags the telemetry session
//! `scenario/subject`, and reduces each run to wall-clock-free metrics
//! (simulated goodput, simulated time-to-target, fault/recovery counts,
//! bytes moved, solver invocations) so the emitted report is byte-stable
//! across machines. `BENCH_scenarios.json` commits that report; the
//! `scenariogate` binary diffs a fresh run against it in CI.
//!
//! [`ParallelTrainer`]: cannikin_core::engine::ParallelTrainer

pub mod registry;
pub mod runner;

pub use registry::{
    compatible, matrix, registry, subjects, Capability, ScenarioKind, ScenarioSpec, SimSystem, SubjectKind,
    SubjectSpec,
};
pub use runner::{run_cell, scenario_report, CellResult, ScenarioBenchReport, SCENARIO_SEED};
