//! Embedding table.

use super::Param;
use crate::tensor::Tensor;

/// A lookup table mapping integer ids to dense vectors.
///
/// `Embedding` does not implement [`super::Layer`] because its input is a
/// list of ids rather than a tensor; models such as the NeuMF-style
/// recommender compose it explicitly. The backward pass accumulates sparse
/// gradients into the dense table.
///
/// # Examples
///
/// ```
/// use minidnn::layers::Embedding;
///
/// let mut emb = Embedding::new(100, 8, 3);
/// let vecs = emb.forward(&[1, 5, 1]);
/// assert_eq!(vecs.shape(), &[3, 8]);
/// ```
#[derive(Debug)]
pub struct Embedding {
    table: Param,
    dim: usize,
    vocab: usize,
    last_ids: Vec<usize>,
}

impl Embedding {
    /// Create an embedding table of `vocab` rows and `dim` columns,
    /// initialized `N(0, 0.1)`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `dim == 0`.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        assert!(vocab > 0 && dim > 0, "embedding dimensions must be positive");
        Embedding {
            table: Param::new(Tensor::randn(&[vocab, dim], seed).scale(0.1), "embedding.table"),
            dim,
            vocab,
            last_ids: Vec::new(),
        }
    }

    /// Look up a batch of ids, producing `[batch, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            assert!(id < self.vocab, "embedding id {id} out of range {}", self.vocab);
            out.extend_from_slice(&self.table.value.data()[id * self.dim..(id + 1) * self.dim]);
        }
        self.last_ids = ids.to_vec();
        Tensor::from_vec(out, &[ids.len(), self.dim]).expect("embedding output shape")
    }

    /// Accumulate gradients for the most recent lookup.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not match the shape of the last forward output
    /// or if called before any forward.
    pub fn backward(&mut self, grad: &Tensor) {
        assert!(!self.last_ids.is_empty(), "backward called before forward");
        assert_eq!(grad.shape(), &[self.last_ids.len(), self.dim], "embedding backward shape mismatch");
        for (row, &id) in self.last_ids.iter().enumerate() {
            let g = &grad.data()[row * self.dim..(row + 1) * self.dim];
            let t = &mut self.table.grad.data_mut()[id * self.dim..(id + 1) * self.dim];
            for (tv, gv) in t.iter_mut().zip(g) {
                *tv += gv;
            }
        }
    }

    /// Access the underlying parameter.
    pub fn param(&self) -> &Param {
        &self.table
    }

    /// Mutable access to the underlying parameter.
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.table
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_table_rows() {
        let mut emb = Embedding::new(10, 4, 1);
        let row3: Vec<f32> = emb.param().value.data()[12..16].to_vec();
        let out = emb.forward(&[3]);
        assert_eq!(out.data(), &row3[..]);
    }

    #[test]
    fn repeated_ids_accumulate_gradient() {
        let mut emb = Embedding::new(5, 2, 2);
        let _ = emb.forward(&[1, 1, 2]);
        let grad = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        emb.backward(&grad);
        // id 1 appears twice: grads [1,2] + [3,4] = [4,6]
        assert_eq!(&emb.param().grad.data()[2..4], &[4.0, 6.0]);
        // id 2 once: [5,6]
        assert_eq!(&emb.param().grad.data()[4..6], &[5.0, 6.0]);
        // id 0 untouched
        assert_eq!(&emb.param().grad.data()[0..2], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_id() {
        let mut emb = Embedding::new(3, 2, 3);
        let _ = emb.forward(&[3]);
    }

    #[test]
    fn gradient_check() {
        let mut emb = Embedding::new(4, 3, 5);
        let ids = [2usize, 0];
        let out = emb.forward(&ids);
        emb.backward(&Tensor::ones(out.shape()));
        let analytic = emb.param().grad.clone();
        let eps = 1e-3f32;
        for idx in 0..emb.param().value.len() {
            let orig = emb.param().value.data()[idx];
            emb.param_mut().value.data_mut()[idx] = orig + eps;
            let plus = emb.forward(&ids).sum();
            emb.param_mut().value.data_mut()[idx] = orig - eps;
            let minus = emb.forward(&ids).sum();
            emb.param_mut().value.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 1e-2);
        }
    }
}
