//! Handoff invariants of the fleet control plane (ISSUE 7 acceptance):
//! exclusive node ownership at every decision, statistical progress
//! surviving preemption, bitwise-identical same-seed schedules, and a
//! chaos scenario where fault-plan crashes shrink the pool mid-run
//! without wedging the stream.

use cannikin_core::engine::TrainerConfig;
use cannikin_fleet::{synthetic_trace, AllocPolicy, FleetController, FleetJobSpec, Priority};
use hetsim::catalog::Gpu;
use hetsim::cluster::NodeSpec;
use hetsim::job::JobSpec;
use hetsim::FaultPlan;

fn mixed_pool(n: usize) -> Vec<NodeSpec> {
    let gpus = [Gpu::A100, Gpu::V100, Gpu::Rtx6000];
    (0..n).map(|i| NodeSpec::new(format!("{}-{i}", gpus[i % 3]), gpus[i % 3])).collect()
}

/// Pull the quoted node names out of one schedule-log line
/// (`d3 t=12.5 cifar-0=["a100-0", "v100-1"] bert-1=[]`).
fn granted_names(line: &str) -> Vec<&str> {
    line.split('"').skip(1).step_by(2).collect()
}

#[test]
fn no_node_serves_two_jobs_in_one_decision() {
    for policy in [AllocPolicy::Cannikin, AllocPolicy::Fifo, AllocPolicy::Static] {
        let mut fleet =
            FleetController::new(mixed_pool(6), synthetic_trace(7, 4, 20.0), policy).expect("valid fleet");
        fleet.run_to_completion(50_000).expect("stream drains");
        assert!(!fleet.schedule_log().is_empty(), "{policy:?}: decisions were logged");
        assert_eq!(
            fleet.schedule_log().len(),
            fleet.assignment_history().len(),
            "{policy:?}: one pool snapshot per decision"
        );
        for line in fleet.schedule_log() {
            let mut names = granted_names(line);
            let held = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), held, "{policy:?}: node granted twice in `{line}`");
        }
    }
}

#[test]
fn progress_survives_full_preemption() {
    // Two nodes; a best-effort job holds both until a production job
    // arrives demanding the whole pool (min_nodes = 2). The allocator
    // must evict the best-effort tenant, run the production job, then
    // re-admit the victim — which must *resume* its effective-epoch
    // count, not restart from zero.
    let nodes = vec![NodeSpec::new("v100-0", Gpu::V100), NodeSpec::new("v100-1", Gpu::V100)];
    let victim = FleetJobSpec::new(
        "victim",
        JobSpec::resnet18_cifar10(),
        TrainerConfig::new(6_400, 64, 512),
        6.0,
    )
    .priority(Priority::BestEffort)
    .noise(300.0, 1.0)
    .seed(11);
    let vip = FleetJobSpec::new(
        "vip",
        JobSpec::resnet18_cifar10(),
        TrainerConfig::new(6_400, 64, 512),
        2.0,
    )
    .priority(Priority::Production)
    .node_range(2, 2)
    .noise(300.0, 1.0)
    .arrival(5.0)
    .seed(13);
    let mut fleet =
        FleetController::new(nodes, vec![victim, vip], AllocPolicy::Cannikin).expect("valid fleet");
    let report = fleet.run_to_completion(50_000).expect("stream drains");

    let victim_out = report.jobs.iter().find(|j| j.name == "victim").expect("victim reported");
    assert!(victim_out.preemptions >= 1, "the production job forced an eviction");
    assert!(
        victim_out.effective_epochs >= 6.0,
        "victim reached its target: {:.3}",
        victim_out.effective_epochs
    );

    // The epoch records span the preemption; cumulative progress must be
    // monotone across the boundary (restore, not restart).
    let records = fleet.job_records("victim").expect("victim records");
    assert!(records.len() >= 2, "victim ran on both sides of the eviction");
    for pair in records.windows(2) {
        assert!(
            pair[1].effective_epochs >= pair[0].effective_epochs,
            "progress went backwards: {:.4} -> {:.4}",
            pair[0].effective_epochs,
            pair[1].effective_epochs
        );
    }
}

#[test]
fn same_seed_schedules_are_bitwise_identical() {
    let run = || {
        let mut fleet =
            FleetController::new(mixed_pool(6), synthetic_trace(17, 5, 25.0), AllocPolicy::Cannikin)
                .expect("valid fleet");
        let report = fleet.run_to_completion(50_000).expect("stream drains");
        (fleet.schedule_log().to_vec(), fleet.assignment_history().to_vec(), report)
    };
    let (log_a, hist_a, rep_a) = run();
    let (log_b, hist_b, rep_b) = run();
    assert_eq!(log_a, log_b, "schedule logs diverged");
    assert_eq!(hist_a, hist_b, "assignment histories diverged");
    assert_eq!(rep_a.makespan.to_bits(), rep_b.makespan.to_bits());
    assert_eq!(rep_a.aggregate_goodput.to_bits(), rep_b.aggregate_goodput.to_bits());
}

#[test]
fn fleet_survives_mid_run_node_crashes() {
    // One tenant carries a fault plan that crashes a node mid-run. The
    // trainer's fault-aware loop evicts it from the job's simulator; the
    // controller must reconcile the death into the shared pool (the node
    // never returns) while the rest of the stream still drains.
    let pool = mixed_pool(4);
    let total = pool.len();
    let faulty = FleetJobSpec::new(
        "faulty",
        JobSpec::resnet18_cifar10(),
        TrainerConfig::new(6_400, 64, 512),
        3.0,
    )
    .node_range(2, 3)
    .noise(300.0, 1.0)
    .seed(5)
    .fault_plan(FaultPlan::new(5).crash_at(40, 0));
    let bystander = FleetJobSpec::new(
        "bystander",
        JobSpec::neumf_movielens(),
        TrainerConfig::new(6_400, 64, 512),
        2.0,
    )
    .arrival(10.0)
    .noise(250.0, 1.2)
    .seed(6);
    let mut fleet =
        FleetController::new(pool, vec![faulty, bystander], AllocPolicy::Cannikin).expect("valid fleet");
    let report = fleet.run_to_completion(50_000).expect("stream drains despite the crash");

    assert!(fleet.pool().live() < total, "the crashed node left the pool");
    for job in &report.jobs {
        assert!(
            job.effective_epochs > 0.0,
            "{} made progress despite the crash",
            job.name
        );
    }
    let crashed: Vec<usize> = (0..total).filter(|&id| fleet.pool().is_dead(id)).collect();
    assert_eq!(crashed.len(), total - fleet.pool().live());
}
