//! The `telemetry` experiment: record a short Cannikin run on cluster B
//! and summarize the event stream — counts per event type, span-duration
//! quantiles, and the solver-overhead percentage — the same numbers a
//! Chrome-trace viewer would show, rendered as text.

use super::tables::next_session_tag;
use crate::row;
use cannikin_core::engine::{CannikinTrainer, TrainerConfig};
use cannikin_telemetry::{self as telemetry, Event, Histogram, Record};
use cannikin_workloads::{clusters, profiles};
use hetsim::Simulator;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Run six epochs of ResNet-18/CIFAR-10 on cluster B with recording
/// enabled and render the summary.
pub fn telemetry_summary() -> String {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    let base = profile.base_batch.max(cluster.len() as u64);
    let sim = Simulator::new(cluster, profile.job.clone(), 151);
    let config = TrainerConfig::new(profile.dataset_size, base, profile.max_batch);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise_boxed(Box::new(profile.noise))
        .config(config)
        .build()
        .expect("valid config");

    let tag = next_session_tag();
    let session = telemetry::Session::start();
    let _identity = telemetry::set_thread_identity(0, tag);
    trainer.run_epochs(6).expect("run");
    let records: Vec<Record> = session.drain().into_iter().filter(|r| r.rank == tag).collect();
    drop(session);
    summarize(&records)
}

/// Render the summary of an already-drained record stream.
pub fn summarize(records: &[Record]) -> String {
    let mut out = format!("telemetry — {} events recorded\n\n", records.len());

    // ---- Event counts per type. ----
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for r in records {
        *counts.entry(r.event.kind()).or_default() += 1;
    }
    let widths = [20, 10];
    out += &row(&["event type".into(), "count".into()], &widths);
    out.push('\n');
    for (kind, count) in &counts {
        out += &row(&[(*kind).to_string(), count.to_string()], &widths);
        out.push('\n');
    }

    // ---- Span-duration quantiles (B/E pairs, LIFO per (node, rank)). ----
    let mut open: HashMap<(u32, u32), Vec<(String, u64)>> = HashMap::new();
    let mut durations: BTreeMap<String, Histogram> = BTreeMap::new();
    for r in records {
        match &r.event {
            Event::SpanBegin(s) => open.entry((r.node, r.rank)).or_default().push((s.name.clone(), r.ts_ns)),
            Event::SpanEnd(s) => {
                if let Some((name, begin_ns)) = open.get_mut(&(r.node, r.rank)).and_then(Vec::pop) {
                    debug_assert_eq!(name, s.name, "span nesting violated");
                    let hist = durations
                        .entry(name)
                        .or_insert_with(|| Histogram::exponential(1e-6, 4.0, 24));
                    hist.record(r.ts_ns.saturating_sub(begin_ns) as f64 / 1e9);
                }
            }
            _ => {}
        }
    }
    let widths = [12, 8, 12, 12, 12];
    out.push('\n');
    out += &row(&["span".into(), "count".into(), "p50 (s)".into(), "p90 (s)".into(), "mean (s)".into()], &widths);
    out.push('\n');
    for (name, hist) in &durations {
        out += &row(
            &[
                name.clone(),
                hist.count().to_string(),
                format!("{:.6}", hist.quantile(0.5).unwrap_or(0.0)),
                format!("{:.6}", hist.quantile(0.9).unwrap_or(0.0)),
                format!("{:.6}", hist.mean().unwrap_or(0.0)),
            ],
            &widths,
        );
        out.push('\n');
    }

    // ---- Solver overhead vs (simulated) training time. ----
    let mut solver_ns = 0u64;
    let mut invocations = 0usize;
    let mut epoch_time_s = 0.0;
    let mut overhead_s = 0.0;
    for r in records {
        match &r.event {
            Event::SolverInvocation(s) => {
                solver_ns += s.wall_ns;
                invocations += 1;
            }
            Event::Counter(c) if c.name == "epoch_time_s" => epoch_time_s += c.value,
            Event::Counter(c) if c.name == "overhead_s" => overhead_s += c.value,
            _ => {}
        }
    }
    out.push('\n');
    out += &format!("solver invocations: {invocations} ({:.3} ms total)\n", solver_ns as f64 / 1e6);
    if epoch_time_s > 0.0 {
        out += &format!(
            "optimizer overhead: {:.6}% of training time (Table 6 basis)\n",
            100.0 * overhead_s / (overhead_s + epoch_time_s)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reports_all_sections() {
        let out = telemetry_summary();
        assert!(out.contains("events recorded"), "{out}");
        assert!(out.contains("split_decision"), "{out}");
        assert!(out.contains("step_timing"), "{out}");
        assert!(out.contains("solver_invocation"), "{out}");
        assert!(out.contains("epoch"), "{out}");
        assert!(out.contains("solver invocations:"), "{out}");
        assert!(out.contains("optimizer overhead:"), "{out}");
    }
}
