//! The §6 discussion experiments: heterogeneity-degree sweep and the
//! sharing-induced-heterogeneity cluster C.

use crate::runners::{convergence_time, run_to_target, System};
use crate::{fmt, row};
use cannikin_core::optperf::{even_split, predict_batch_time, NodePerf, OptPerfSolver, SolverInput};
use cannikin_workloads::{clusters, profiles};
use hetsim::Simulator;

/// §6 "impact of varying heterogeneity degree": two workers, one `N`
/// times faster than the other, pure compute. The optimal split's batch
/// time relative to the even split approaches the theoretical bound
/// `2/(N+1)` as communication vanishes.
pub fn hetero_sweep() -> String {
    let mut out = String::from("§6 — two-worker heterogeneity sweep (compute-only)\n");
    let widths = [8, 14, 14, 14];
    out += &row(&["N".into(), "opt/even".into(), "bound 2/(N+1)".into(), "gap".into()], &widths);
    out.push('\n');
    for &ratio in &[1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let (measured, bound) = sweep_point(ratio);
        out += &row(
            &[format!("{ratio:.1}"), fmt(measured), fmt(bound), fmt(measured - bound)],
            &widths,
        );
        out.push('\n');
    }
    out
}

/// One point of the sweep: `(opt/even time ratio, 2/(N+1))`.
pub fn sweep_point(speed_ratio: f64) -> (f64, f64) {
    // Two synthetic nodes: per-sample times 1 and `speed_ratio`
    // milliseconds, negligible fixed terms and communication.
    let node = |per_sample: f64| NodePerf {
        q: per_sample * 1e-3 / 3.0,
        s: 1e-7,
        k: per_sample * 2e-3 / 3.0,
        m: 1e-7,
        max_batch: None,
    };
    let input = SolverInput { nodes: vec![node(1.0), node(speed_ratio)], gamma: 0.1, t_o: 1e-9, t_u: 1e-9 };
    let mut solver = OptPerfSolver::new(input.clone());
    let total = 1200u64;
    let plan = solver.solve(total).expect("feasible");
    let even = predict_batch_time(&input, &even_split(total, 2));
    (plan.opt_perf / even, 2.0 / (speed_ratio + 1.0))
}

/// §6 cluster C: heterogeneity induced purely by GPU sharing. Cannikin's
/// relative advantage should align with the hardware-heterogeneous
/// cluster B.
pub fn cluster_c_experiment() -> String {
    let profile = profiles::cifar10_resnet18();
    let mut out = String::from("§6 — sharing-induced heterogeneity (cluster C, 16× RTX6000 with contention)\n");
    let widths = [12, 16, 16, 14];
    out += &row(&["cluster".into(), "Cannikin (s)".into(), "DDP (s)".into(), "reduction".into()], &widths);
    out.push('\n');
    for (name, cluster) in [("B", clusters::cluster_b()), ("C", clusters::cluster_c_default())] {
        let can = run_to_target(System::Cannikin, &profile, &cluster, 151, 2000);
        let ddp = run_to_target(System::Ddp, &profile, &cluster, 151, 2000);
        let tc = convergence_time(&can, &profile).expect("cannikin converged");
        let td = convergence_time(&ddp, &profile).expect("ddp converged");
        out += &row(
            &[name.into(), fmt(tc), fmt(td), format!("{:.0}%", (1.0 - tc / td) * 100.0)],
            &widths,
        );
        out.push('\n');
    }
    out += "\nfixed-batch (B=512) batch-time comparison on cluster C:\n";
    let cluster = clusters::cluster_c_default();
    let sim = Simulator::new(cluster.clone(), profile.job.clone(), 5).with_noise(0.0, 0.0);
    let mut solver = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &profile.job));
    let plan = solver.solve(512).expect("feasible");
    let opt = sim.ideal_batch_time(&plan.local_batches);
    let even = sim.ideal_batch_time(&even_split(512, cluster.len()));
    out += &format!("  OptPerf {}s vs even split {}s ({:.0}% faster)\n", fmt(opt), fmt(even), (1.0 - opt / even) * 100.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_approaches_theoretical_bound() {
        for &ratio in &[2.0, 4.0, 8.0] {
            let (measured, bound) = sweep_point(ratio);
            assert!(measured >= bound - 1e-6, "cannot beat the bound: {measured} vs {bound}");
            assert!(measured - bound < 0.02, "should approach the bound: {measured} vs {bound}");
        }
    }

    #[test]
    fn homogeneous_pair_has_no_gain() {
        let (measured, bound) = sweep_point(1.0);
        assert!((measured - 1.0).abs() < 1e-6);
        assert!((bound - 1.0).abs() < 1e-12);
    }
}
