//! Functional data-parallel training with real gradients.
//!
//! [`ParallelTrainer`] runs one `minidnn` model replica per OS thread,
//! exchanges gradients with the real bucketed ring all-reduce of
//! `cannikin-collectives`, aggregates them with the Eq. (9) batch-ratio
//! weights, and estimates the gradient noise scale live with Eq. (10) +
//! Theorem 4.1. CPU threads are equally fast, so hardware heterogeneity is
//! emulated with per-node *slowdown factors* (a slow node sleeps in
//! proportion to its measured compute time — the same observable a slower
//! GPU would produce).
//!
//! By default the functional path synchronizes the whole gradient after
//! backpropagation (no bucket overlap), so its timing model is the
//! all-compute-bottleneck special case: `T = max_i t_compute^i + T_comm`
//! and the analyzer is fed `T_o = 0, T_u = T_comm`, under which the
//! OptPerf solver's Check 1 (equal compute times) is exact. With
//! [`ParallelConfig::overlap`] enabled, each rank instead drives the
//! backward pass layer by layer and ships every layer's gradient bucket to
//! a per-step communication worker as soon as it is produced (the DDP
//! bucketing scheme, §3.2.3 of the paper), so all-reduce time hides behind
//! the remaining backward compute; the analyzer is then fed the *exposed*
//! communication time `T_u = T_comm − T_o`.
//!
//! Gradients can additionally travel through a lossy [`Codec`] (bf16/f16
//! quantization or top-k sparsification) with a persistent per-rank
//! [`ErrorFeedback`] residual, cutting bytes on the wire while the
//! compensated trajectory tracks the uncompressed one.

use super::loader::HeteroDataLoader;
use crate::error::CannikinError;
use crate::gns::{estimate_gns, Aggregation, GnsEstimate, GnsTracker, GradientSample};
use crate::perf::{Analyzer, MeasurementAggregation};
use crate::policy::{EpochObservation, Policy, PolicyContext};

use cannikin_collectives::{
    Codec, CommError, CommFaultPlan, CommGroup, Communicator, ErrorFeedback, RetryPolicy, TransportKind,
};
use cannikin_insight::{HealthReport, Monitor};
use cannikin_telemetry::{
    self as telemetry, AllReduceBucket, AnomalyKind, Event, PolicyDecision, RecoveryAction, RecoveryKind,
    SplitDecision, StepTiming,
};
use hetsim::trace::{BatchTrace, NodeObservation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use minidnn::data::ClassificationDataset;
use minidnn::layers::{assign_grads_from, flatten_grads_into, flatten_values, zero_grads, Layer, Sequential};
use minidnn::loss::{Loss, SoftmaxCrossEntropy};
use minidnn::lr::LrScaler;
use minidnn::optim::{Optimizer, Sgd};

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a functional training run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Per-node slowdown factors (1.0 = full speed); the length sets the
    /// node count.
    pub slowdowns: Vec<f64>,
    /// Reference/initial total batch size B₀.
    pub base_batch: u64,
    /// Upper bound of the adaptive batch range.
    pub max_batch: u64,
    /// Whether the total batch size adapts via goodput.
    pub adaptive: bool,
    /// Base learning rate at B₀.
    pub base_lr: f64,
    /// Learning-rate scaling rule for grown batches.
    pub lr_scaler: LrScaler,
    /// RNG seed (model init and shuffling).
    pub seed: u64,
    /// Injected gradient-exchange failures, keyed by collective sequence
    /// number; `Some` routes every rank through the resilient (timeout +
    /// retry-with-backoff) all-reduce path. `None` keeps the plain path.
    pub comm_faults: Option<CommFaultPlan>,
    /// Retry policy of the resilient path (only used with `comm_faults`).
    pub retry: RetryPolicy,
    /// Collective backend for the gradient exchange: in-process channels
    /// (default) or real localhost TCP sockets. Results are bitwise
    /// identical across backends.
    pub transport: TransportKind,
    /// Gradient compression codec for the exchange (default: lossless raw
    /// `f32`). Lossy codecs run with a persistent per-rank error-feedback
    /// residual so convergence tracks the uncompressed trajectory.
    pub codec: Codec,
    /// Overlap gradient communication with backward compute: each layer's
    /// gradient bucket is all-reduced by a per-step comm worker while
    /// earlier layers still compute (default: `false`, synchronize after
    /// the full backward pass). Ignored — with a sequential fallback — when
    /// `comm_faults` routes the exchange through the resilient path, whose
    /// step-retry protocol needs the whole gradient in one collective.
    pub overlap: bool,
}

impl ParallelConfig {
    /// A 3-node heterogeneous default: one full-speed node, one at 2x
    /// slowdown, one at 4x — cluster-A-like ratios.
    pub fn hetero_default(base_batch: u64) -> Self {
        ParallelConfig {
            slowdowns: vec![1.0, 2.0, 4.0],
            base_batch,
            max_batch: base_batch * 8,
            adaptive: true,
            base_lr: 0.1,
            lr_scaler: LrScaler::AdaScale,
            seed: 17,
            comm_faults: None,
            retry: RetryPolicy::default(),
            transport: TransportKind::InProcess,
            codec: Codec::None,
            overlap: false,
        }
    }
}

/// Per-epoch outcome of the functional trainer.
#[derive(Debug, Clone)]
pub struct ParallelEpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Total batch size used.
    pub total_batch: u64,
    /// Per-node local batches.
    pub local_batches: Vec<u64>,
    /// Measured wall time of the epoch, s (including emulated slowdowns).
    pub epoch_time: f64,
    /// Mean training loss across steps.
    pub mean_loss: f64,
    /// Training accuracy measured after the epoch (rank 0 replica).
    pub accuracy: f64,
    /// Smoothed gradient noise scale after the epoch, if estimable.
    pub noise_scale: Option<f64>,
    /// Whether the learned performance model produced the split.
    pub used_model: bool,
    /// Gradient-exchange retries this epoch (injected-failure recoveries
    /// plus full-step retries; 0 on the non-resilient path).
    pub comm_retries: u32,
    /// Bytes moved on the wire by this epoch's collectives, summed over
    /// ranks (payload only for the in-process backend; payload plus frame
    /// headers over TCP).
    pub comm_bytes: u64,
    /// Communication time hidden behind backward compute this epoch,
    /// summed over ranks and steps, in seconds (0 unless
    /// [`ParallelConfig::overlap`] is enabled).
    pub comm_overlap: f64,
}

/// Functional Cannikin trainer over OS threads.
pub struct ParallelTrainer {
    dataset: Arc<ClassificationDataset>,
    config: ParallelConfig,
    weights: Vec<f32>,
    analyzer: Analyzer,
    tracker: GnsTracker,
    loader: HeteroDataLoader,
    epoch: usize,
    last_split: Vec<u64>,
    model_factory: Arc<dyn Fn(u64) -> Sequential + Send + Sync>,
    policy: Box<dyn Policy>,
    monitor: Option<Monitor>,
    /// Per-rank error-feedback residuals, persisted across epochs so the
    /// compensation accumulates over the whole run (only populated while a
    /// lossy codec is configured).
    feedback: Vec<ErrorFeedback>,
}

impl ParallelTrainer {
    /// A fresh [`ParallelTrainerBuilder`](super::ParallelTrainerBuilder) —
    /// the supported construction path.
    pub fn builder() -> super::ParallelTrainerBuilder {
        super::ParallelTrainerBuilder::new()
    }

    pub(crate) fn from_parts(
        dataset: ClassificationDataset,
        model_factory: Arc<dyn Fn(u64) -> Sequential + Send + Sync>,
        config: ParallelConfig,
        policy: Box<dyn Policy>,
    ) -> Self {
        let n = config.slowdowns.len();
        assert!(n > 0, "need at least one node");
        assert!(config.base_batch >= n as u64, "base batch must cover every node");
        let model = model_factory(config.seed);
        let weights = flatten_values(&model.parameters()).into_data();
        let loader = HeteroDataLoader::new(dataset.len(), config.seed);
        ParallelTrainer {
            dataset: Arc::new(dataset),
            analyzer: Analyzer::new(n, MeasurementAggregation::InverseVariance),
            tracker: GnsTracker::new(0.9),
            loader,
            epoch: 0,
            last_split: Vec::new(),
            weights,
            config,
            model_factory,
            policy,
            monitor: None,
            feedback: Vec::new(),
        }
    }

    /// Attach an online [`Monitor`]: after every epoch the trainer drains
    /// its fresh anomalies, records a `health_anomalies` counter, and
    /// discards the compute-law observations of any rank flagged as a
    /// straggler so the next epochs re-profile it via the bootstrap path.
    pub fn attach_monitor(&mut self, monitor: Monitor) {
        self.monitor = Some(monitor);
    }

    /// The attached monitor's current health report, if one is installed.
    pub fn health(&self) -> Option<HealthReport> {
        self.monitor.as_ref().map(|m| m.report())
    }

    /// Smoothed gradient noise scale, if available.
    pub fn noise_scale(&self) -> Option<f64> {
        self.tracker.noise_scale()
    }

    /// The analyzer's current state (inspection/tests).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Current rank count.
    pub fn world_size(&self) -> usize {
        self.config.slowdowns.len()
    }

    /// The effective configuration (after builder/env resolution).
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Evict a rank (crash or graceful leave): the next epoch's comm group
    /// is built over the survivors, the dead rank's analyzer state is
    /// dropped, and the split is re-solved so `Σ bᵢ = B` over the new
    /// membership. The shared model weights and the GNS tracker carry over
    /// untouched — no training progress is lost.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or it is the last rank.
    pub fn remove_rank(&mut self, rank: usize) {
        let n = self.config.slowdowns.len();
        assert!(rank < n, "rank {rank} out of range");
        assert!(n > 1, "cannot remove the last rank");
        self.config.slowdowns.remove(rank);
        self.analyzer.remove_node(rank);
        if self.last_split.len() == n {
            self.last_split.remove(rank);
        }
        // Survivors keep their accumulated residuals; the dead rank's
        // compensation leaves with it.
        if self.feedback.len() == n {
            self.feedback.remove(rank);
        }
        self.policy.on_membership_change(self.config.slowdowns.len());
        telemetry::emit(Event::RecoveryAction(RecoveryAction {
            kind: RecoveryKind::GroupShrink,
            node: Some(rank as u32),
            step: self.epoch as u64,
            attempt: 1,
            backoff_ns: 0,
        }));
    }

    /// Admit a new rank with the given emulated slowdown factor. It starts
    /// from the shared weights like every replica and is profiled through
    /// the bootstrap path over the next epochs.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1` or the base batch cannot cover the grown
    /// membership.
    pub fn add_rank(&mut self, slowdown: f64) {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        self.config.slowdowns.push(slowdown);
        assert!(
            self.config.base_batch >= self.config.slowdowns.len() as u64,
            "base batch must cover every rank"
        );
        self.analyzer.add_node(None);
        // Force a fresh split that covers the newcomer. Its residual starts
        // at zero like every fresh replica's (existing ranks keep theirs).
        if !self.feedback.is_empty() {
            self.feedback.push(ErrorFeedback::new(self.weights.len()));
        }
        self.last_split.clear();
        self.policy.on_membership_change(self.config.slowdowns.len());
        telemetry::emit(Event::RecoveryAction(RecoveryAction {
            kind: RecoveryKind::GroupGrow,
            node: Some((self.config.slowdowns.len() - 1) as u32),
            step: self.epoch as u64,
            attempt: 1,
            backoff_ns: 0,
        }));
    }

    /// Run one epoch of real data-parallel training.
    ///
    /// # Errors
    ///
    /// [`CannikinError::Comm`] when the comm group cannot be built (e.g.
    /// TCP rendezvous failure) or a rank's gradient exchange fails beyond
    /// recovery.
    pub fn run_epoch(&mut self) -> Result<ParallelEpochReport, CannikinError> {
        let _epoch_span = telemetry::span("epoch");
        let n = self.config.slowdowns.len();
        let phi = self.tracker.noise_scale();

        // ---- Plan the split (Fig. 4 control loop) via the policy. ----
        let plan_span = telemetry::span("plan");
        let ctx = PolicyContext {
            epoch: self.epoch,
            nodes: n,
            adaptive: self.config.adaptive,
            base_batch: self.config.base_batch,
            max_batch: self.config.max_batch,
            dataset_size: self.dataset.len(),
            phi,
            last_split: self.last_split.clone(),
            solver_input: self.analyzer.solver_input().ok(),
            per_sample_times: (0..n).map(|i| self.analyzer.per_sample_time(i).unwrap_or(1.0)).collect(),
        };
        let epoch_plan = self.policy.ask(&ctx)?;
        let (total, local) = (epoch_plan.total, epoch_plan.local);
        let (used_model, predicted_t, source) = (epoch_plan.used_model, epoch_plan.predicted_t, epoch_plan.source);
        drop(plan_span);
        if telemetry::enabled() {
            telemetry::emit(Event::SplitDecision(SplitDecision { total, local: local.clone(), predicted_t, source }));
            telemetry::emit(Event::PolicyDecision(PolicyDecision {
                policy: self.policy.name().to_string(),
                epoch: self.epoch as u64,
                total,
            }));
        }

        // ---- Train the epoch across threads. ----
        // Even steps use the planned split, odd steps a ~25%-perturbed
        // variant: every node sees two well-separated local batch sizes
        // *within* the same epoch, so its linear compute model is fit
        // under identical thermal conditions (cross-epoch timing drift on
        // real threads would otherwise poison the slopes).
        let odd = measurement_variant(&local);
        let plan = self.loader.next_epoch_alternating(&local, &odd);
        let steps = plan.steps().max(1);
        let even_total: u64 = local.iter().sum();
        let odd_total: u64 = odd.iter().sum();
        let step_totals: Arc<Vec<u64>> =
            Arc::new((0..steps).map(|s| if s % 2 == 0 { even_total } else { odd_total }).collect());
        let lr = self.config.lr_scaler.scaled_lr(self.config.base_lr, self.config.base_batch, total, phi);
        // Each replica thread gets a proportional share of the kernel
        // thread budget so n replicas × blocked-matmul fan-out never
        // oversubscribes the machine.
        let kernel_threads = minidnn::tensor::threads::replica_share(n);
        let resilient = self.config.comm_faults.is_some();
        // The resilient step-retry protocol re-runs the whole exchange as
        // one collective, so overlap falls back to the sequential path.
        let overlap = self.config.overlap && !resilient;
        // (Re)create the error-feedback residuals when the membership or
        // parameter count changed; otherwise they carry across epochs.
        let lossy = self.config.codec.is_lossy();
        if lossy
            && (self.feedback.len() != n || self.feedback.iter().any(|f| f.len() != self.weights.len()))
        {
            self.feedback = (0..n).map(|_| ErrorFeedback::new(self.weights.len())).collect();
        }
        let mut feedbacks: Vec<Option<ErrorFeedback>> = if lossy {
            std::mem::take(&mut self.feedback).into_iter().map(Some).collect()
        } else {
            (0..n).map(|_| None).collect()
        };
        let comms =
            CommGroup::with_options(n, &self.config.transport, self.config.comm_faults.clone(), self.config.codec)?;
        let started = Instant::now();
        let mut handles = Vec::new();
        for (rank, comm) in comms.into_iter().enumerate() {
            let dataset = Arc::clone(&self.dataset);
            let factory = Arc::clone(&self.model_factory);
            let weights = self.weights.clone();
            let batches: Vec<Vec<usize>> = plan.node_batches(rank).to_vec();
            let step_totals = Arc::clone(&step_totals);
            let slowdown = self.config.slowdowns[rank];
            let seed = self.config.seed;
            let retry = self.config.retry;
            let epoch = self.epoch;
            let feedback = feedbacks[rank].take();
            handles.push(thread::spawn(move || {
                run_rank(RankArgs {
                    comm,
                    rank,
                    dataset,
                    factory,
                    weights,
                    batches,
                    step_totals,
                    slowdown,
                    lr,
                    seed,
                    steps,
                    kernel_threads,
                    resilient,
                    retry,
                    epoch,
                    overlap,
                    feedback,
                })
            }));
        }
        // Join every thread before propagating the first failure so no
        // rank is left detached mid-collective.
        let joined: Vec<Result<RankOutput, CommError>> =
            handles.into_iter().map(|h| h.join().expect("training rank panicked")).collect();
        let mut rank_outputs = Vec::with_capacity(joined.len());
        for r in joined {
            rank_outputs.push(r?);
        }
        let epoch_time = started.elapsed().as_secs_f64();
        let comm_bytes: u64 = rank_outputs.iter().map(|r| r.comm_bytes).sum();
        telemetry::counter("comm_bytes", comm_bytes as f64);
        let comm_overlap: f64 = rank_outputs
            .iter()
            .flat_map(|r| r.step_measurements.iter())
            .map(|m| m.overlap)
            .sum();
        if overlap {
            telemetry::counter("comm_overlap_s", comm_overlap);
        }
        // Residuals travel back to the trainer so the next epoch's
        // compensation continues where this one stopped.
        if lossy {
            self.feedback = rank_outputs
                .iter_mut()
                .map(|r| r.feedback.take().expect("lossy ranks return their residual"))
                .collect();
        }

        // ---- Absorb measurements (discarding thread warm-up steps:
        // freshly spawned ranks run their first batches with cold caches,
        // which would poison the linear fit). ----
        let warmup = if steps > 6 { 3 } else { 0 };
        for step in warmup..steps {
            let observations = rank_outputs
                .iter()
                .map(|r| {
                    let m = r.step_measurements[step];
                    NodeObservation {
                        node: r.rank,
                        local_batch: m.batch_size,
                        a_time: m.a_time,
                        p_time: m.p_time,
                        sync_start: m.a_time + 0.5 * m.p_time,
                        gamma_obs: 0.5,
                        t_comm_obs: m.comm_time,
                        // Overlapped comm is hidden behind compute, so the
                        // solver only sees the exposed tail (T_u = T_comm −
                        // T_o); on the sequential path overlap is 0 and
                        // this degenerates to T_u = T_comm.
                        t_u_obs: (m.comm_time - m.overlap).max(0.0),
                        rel_variance: 1e-4,
                    }
                })
                .collect();
            self.analyzer.observe_batch(&BatchTrace {
                observations,
                batch_time: 0.0,
                bucket_sync_end: Vec::new(),
                faults: Vec::new(),
            });
        }
        for est in &rank_outputs[0].gns_estimates {
            self.tracker.observe(*est);
        }
        self.apply_health(n);

        // ---- Feed the realized outcome back to the policy. ----
        // Reward is the measured goodput of this epoch: statistical
        // efficiency at the fresh φ estimate times raw throughput (plain
        // samples/s while no estimate exists yet).
        let mean_batch_time = epoch_time / steps as f64;
        let fresh_phi = self.tracker.noise_scale();
        let (efficiency, realized_goodput) = match fresh_phi {
            Some(phi) => (
                crate::gns::statistical_efficiency(phi, self.config.base_batch, total),
                crate::gns::goodput(phi, self.config.base_batch, total, mean_batch_time),
            ),
            None => (1.0, total as f64 / mean_batch_time),
        };
        self.policy.tell(&EpochObservation {
            epoch: self.epoch,
            total,
            local: local.clone(),
            epoch_time,
            mean_batch_time,
            efficiency,
            goodput: realized_goodput,
            phi: fresh_phi,
            per_sample_times: rank_outputs
                .iter()
                .map(|r| {
                    r.step_measurements
                        .last()
                        .map_or(1.0, |m| (m.a_time + m.p_time) / m.batch_size.max(1) as f64)
                })
                .collect(),
        });

        // ---- Evaluate and roll state forward. ----
        let comm_retries = rank_outputs[0].comm_retries;
        let rank0 = rank_outputs.swap_remove(0);
        self.weights = rank0.weights;
        let mean_loss = rank0.losses.iter().sum::<f64>() / rank0.losses.len().max(1) as f64;
        let mut eval_model = (self.model_factory)(self.config.seed);
        let flat = minidnn::tensor::Tensor::from_vec(self.weights.clone(), &[self.weights.len()]).expect("weights");
        minidnn::layers::assign_values(&mut eval_model.parameters_mut(), &flat);
        let accuracy = evaluate(&mut eval_model, &self.dataset);

        let report = ParallelEpochReport {
            epoch: self.epoch,
            total_batch: total,
            local_batches: local.clone(),
            epoch_time,
            mean_loss,
            accuracy,
            noise_scale: self.tracker.noise_scale(),
            used_model,
            comm_retries,
            comm_bytes,
            comm_overlap,
        };
        self.epoch += 1;
        self.last_split = local;
        Ok(report)
    }

    /// End-of-epoch health pass. The rank threads have already joined (and
    /// flushed their telemetry buffers to the monitor on thread exit), so
    /// only the driver thread's buffer — holding this epoch's
    /// `SplitDecision` — still needs a flush before the verdicts are read.
    fn apply_health(&mut self, n: usize) {
        let Some(monitor) = &self.monitor else { return };
        telemetry::flush_thread();
        let fresh = monitor.drain_new();
        if fresh.is_empty() {
            return;
        }
        telemetry::counter("health_anomalies", fresh.len() as f64);
        let mut flagged: Vec<u32> = fresh
            .iter()
            .filter(|a| a.kind == AnomalyKind::Straggler)
            .filter_map(|a| a.node)
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        for node in flagged {
            if (node as usize) < n {
                self.analyzer.reset_node(node as usize);
            }
        }
    }

}

impl std::fmt::Debug for ParallelTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ParallelTrainer(epoch {}, {} nodes)", self.epoch, self.config.slowdowns.len())
    }
}

struct RankArgs {
    comm: Communicator,
    rank: usize,
    dataset: Arc<ClassificationDataset>,
    factory: Arc<dyn Fn(u64) -> Sequential + Send + Sync>,
    weights: Vec<f32>,
    batches: Vec<Vec<usize>>,
    step_totals: Arc<Vec<u64>>,
    slowdown: f64,
    lr: f64,
    seed: u64,
    steps: usize,
    kernel_threads: usize,
    resilient: bool,
    retry: RetryPolicy,
    epoch: usize,
    overlap: bool,
    feedback: Option<ErrorFeedback>,
}

#[derive(Debug, Clone, Copy)]
struct StepMeasurement {
    batch_size: u64,
    a_time: f64,
    p_time: f64,
    /// Total communication busy time of the step (exposed + overlapped).
    comm_time: f64,
    /// Portion of `comm_time` hidden behind backward compute (0 on the
    /// sequential path).
    overlap: f64,
}

struct RankOutput {
    rank: usize,
    weights: Vec<f32>,
    losses: Vec<f64>,
    gns_estimates: Vec<GnsEstimate>,
    step_measurements: Vec<StepMeasurement>,
    comm_retries: u32,
    comm_bytes: u64,
    feedback: Option<ErrorFeedback>,
}

/// A second split for within-epoch measurement: adjacent node pairs trade
/// ~25% of their smaller share (at least one sample), preserving the sum
/// and the one-sample floor while giving the linear fit real leverage.
fn measurement_variant(split: &[u64]) -> Vec<u64> {
    let mut out = split.to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        let d = (out[i].min(out[i + 1]) / 4).max(1);
        if out[i + 1] > d {
            out[i] += d;
            out[i + 1] -= d;
        } else if out[i] > d {
            out[i] -= d;
            out[i + 1] += d;
        }
        i += 2;
    }
    if out.len() % 2 == 1 && out.len() >= 3 {
        let last = out.len() - 1;
        let d = (out[last].min(out[0]) / 4).max(1);
        if out[last] > d {
            out[last] -= d;
            out[0] += d;
        } else if out[0] > d {
            out[0] -= d;
            out[last] += d;
        }
    }
    out
}

fn run_rank(args: RankArgs) -> Result<RankOutput, CommError> {
    let RankArgs {
        comm,
        rank,
        dataset,
        factory,
        weights,
        batches,
        step_totals,
        slowdown,
        lr,
        seed,
        steps,
        kernel_threads,
        resilient,
        retry,
        epoch,
        overlap,
        feedback,
    } = args;
    let mut comm = comm;
    let mut feedback = feedback;
    // Cap this replica's matmul fan-out at its share of the budget for the
    // lifetime of the rank thread.
    let _budget = minidnn::tensor::threads::ThreadBudgetGuard::new(kernel_threads);
    // Every record this thread emits carries its rank, and step timings
    // carry the step index, so events from concurrently running replicas
    // can never be attributed to the wrong step when the drain interleaves
    // them by timestamp.
    let _identity = telemetry::set_thread_identity(rank as u32, rank as u32);
    let mut model = factory(seed);
    // Start from the shared weights so every replica is identical.
    let flat = minidnn::tensor::Tensor::from_vec(weights, &[model.parameters().iter().map(|p| p.len()).sum()])
        .expect("weight vector");
    minidnn::layers::assign_values(&mut model.parameters_mut(), &flat);
    let mut opt = Sgd::new(lr).momentum(0.9);

    let mut losses = Vec::with_capacity(steps);
    let mut gns_estimates = Vec::with_capacity(steps);
    let mut measurements = Vec::with_capacity(steps);
    // Per-rank backoff jitter, deterministic in (seed, epoch, rank): the
    // same seeded run replays the same retry timeline.
    let mut retry_rng = StdRng::seed_from_u64(seed ^ ((epoch as u64) << 32) ^ (rank as u64).wrapping_mul(0x9E37_79B9));
    let mut comm_retries = 0u32;
    // Flat gradient buffer reused across every step of the epoch.
    let mut g: Vec<f32> = Vec::with_capacity(flat.len());
    // Per-layer parameter counts, in forward order — the bucket layout of
    // the overlapped exchange (identical on every rank by the identical-
    // architecture contract).
    let layer_sizes: Vec<usize> = if overlap {
        model.layers().iter().map(|l| l.parameters().iter().map(|p| p.len()).sum()).collect()
    } else {
        Vec::new()
    };
    for (step, batch_indices) in batches.iter().take(steps).enumerate() {
        let _step_span = telemetry::span("step");
        let ratio = batch_indices.len() as f64 / step_totals[step] as f64;
        // Forward (+ data load) — the `a_i` phase.
        let t0 = Instant::now();
        let (x, y) = dataset.batch(batch_indices);
        let logits = model.forward(&x, true);
        let (loss, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
        let a_elapsed = t0.elapsed().as_secs_f64();

        let (p_elapsed, comm_time, overlapped, local_sq) = if overlap {
            // Backward + exchange interleaved: buckets ship to the comm
            // worker as their layers finish.
            zero_grads(&mut model.parameters_mut());
            let outcome = overlap_step(OverlapArgs {
                model: &mut model,
                loss_grad: &grad,
                g: &mut g,
                layer_sizes: &layer_sizes,
                comm,
                feedback: feedback.take(),
                weight: ratio as f32,
                slowdown,
                forward_elapsed: a_elapsed,
            });
            comm = outcome.comm;
            feedback = outcome.feedback;
            (outcome.p_time, outcome.comm_time, outcome.overlap, outcome.local_sq)
        } else {
            // Backward — the `P_i` phase.
            let t1 = Instant::now();
            zero_grads(&mut model.parameters_mut());
            model.backward(&grad);
            let p_elapsed = t1.elapsed().as_secs_f64();

            // Emulate a slower GPU: stretch this node's compute wall time.
            if slowdown > 1.0 {
                let extra = (a_elapsed + p_elapsed) * (slowdown - 1.0);
                thread::sleep(Duration::from_secs_f64(extra));
            }

            // Gradient exchange: Eq. (9) weighted aggregation + GNS inputs.
            flatten_grads_into(&model.parameters(), &mut g);
            let local_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
            let t2 = Instant::now();
            if resilient {
                // Injected failures abort before any data moves and exhausted
                // budgets restore the unscaled buffer, so looping until success
                // applies the Eq. (9) scaling exactly once — every rank decides
                // identically (shared plan, lockstep sequence numbers), so no
                // rank can apply an update the others dropped.
                loop {
                    match comm.weighted_all_reduce_resilient_ef(
                        &mut g,
                        ratio as f32,
                        &retry,
                        &mut retry_rng,
                        feedback.as_mut(),
                    ) {
                        Ok(attempt) => {
                            comm_retries += attempt - 1;
                            break;
                        }
                        Err(CommError::RetriesExhausted { attempts }) => {
                            comm_retries += attempts;
                            telemetry::emit(Event::RecoveryAction(RecoveryAction {
                                kind: RecoveryKind::StepRetry,
                                node: Some(rank as u32),
                                step: step as u64,
                                attempt: comm_retries,
                                backoff_ns: 0,
                            }));
                        }
                        Err(e) => return Err(e),
                    }
                }
            } else {
                comm.weighted_all_reduce_ef(&mut g, ratio as f32, feedback.as_mut());
            }
            (p_elapsed, t2.elapsed().as_secs_f64(), 0.0, local_sq)
        };
        let global_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();

        // Gather (bᵢ, |gᵢ|²) from every rank for Eq. (10).
        let rows = comm.all_gather_vec(&[batch_indices.len() as f64, local_sq]);
        if rank == 0 {
            let samples: Vec<GradientSample> = rows
                .iter()
                .map(|r| GradientSample { local_batch: r[0] as u64, local_sq_norm: r[1] })
                .collect();
            if let Ok(est) = estimate_gns(&samples, global_sq, Aggregation::MinimumVariance) {
                gns_estimates.push(est);
            }
        }

        // Apply the identical global gradient on every replica.
        assign_grads_from(&mut model.parameters_mut(), &g);
        opt.step(&mut model.parameters_mut());

        losses.push(f64::from(loss));
        if telemetry::enabled() {
            telemetry::emit(Event::StepTiming(StepTiming {
                step: step as u64,
                rank: rank as u32,
                b_i: batch_indices.len() as u64,
                t_compute: (a_elapsed + p_elapsed) * slowdown,
                t_comm: comm_time,
                overlap: overlapped,
            }));
        }
        measurements.push(StepMeasurement {
            batch_size: batch_indices.len() as u64,
            a_time: a_elapsed * slowdown,
            p_time: p_elapsed * slowdown,
            comm_time,
            overlap: overlapped,
        });
    }
    Ok(RankOutput {
        rank,
        weights: flatten_values(&model.parameters()).into_data(),
        losses,
        gns_estimates,
        step_measurements: measurements,
        comm_retries,
        comm_bytes: comm.bytes_sent(),
        feedback,
    })
}

struct OverlapArgs<'a> {
    model: &'a mut Sequential,
    loss_grad: &'a minidnn::tensor::Tensor,
    g: &'a mut Vec<f32>,
    layer_sizes: &'a [usize],
    comm: Communicator,
    feedback: Option<ErrorFeedback>,
    weight: f32,
    slowdown: f64,
    forward_elapsed: f64,
}

struct OverlapOutcome {
    comm: Communicator,
    feedback: Option<ErrorFeedback>,
    /// Pure backward compute, s (unscaled — the caller applies `slowdown`).
    p_time: f64,
    /// Total communication busy time, s.
    comm_time: f64,
    /// Portion of `comm_time` that ran while backward still computed, s.
    overlap: f64,
    /// `|g_local|²` of the raw (pre-compensation, pre-scaling) gradient.
    local_sq: f64,
}

/// One overlapped backward + gradient exchange: the backward pass runs
/// layer by layer from the loss down, and as soon as a layer's gradients
/// exist its flat-buffer bucket is handed to a communication worker thread
/// that all-reduces it — tail-first, the order DDP reduces buckets in —
/// while earlier layers still compute. An emulated slow node spreads its
/// slowdown sleep across the per-layer backward steps, so the comm worker
/// overlaps with the stretched compute exactly as it would on genuinely
/// slower hardware.
///
/// The worker applies the same per-bucket pipeline as
/// [`Communicator::weighted_all_reduce_ef`] (compensate → scale → quantize
/// → record → reduce), with bucket offsets indexing into the persistent
/// [`ErrorFeedback`] residual. Buckets are produced and reduced in the
/// same deterministic order on every rank, preserving the SPMD contract.
fn overlap_step(args: OverlapArgs<'_>) -> OverlapOutcome {
    let OverlapArgs { model, loss_grad, g, layer_sizes, comm, feedback, weight, slowdown, forward_elapsed } =
        args;
    // Stretch the forward phase first; no bucket exists yet, so there is
    // nothing to overlap with it.
    if slowdown > 1.0 {
        thread::sleep(Duration::from_secs_f64(forward_elapsed * (slowdown - 1.0)));
    }
    let total: usize = layer_sizes.iter().sum();
    g.clear();
    g.resize(total, 0.0);
    // Disjoint per-layer views of the flat gradient, forward order.
    let mut views: Vec<(usize, &mut [f32])> = Vec::with_capacity(layer_sizes.len());
    {
        let mut rest: &mut [f32] = g.as_mut_slice();
        let mut offset = 0usize;
        for &len in layer_sizes {
            let (head, tail) = rest.split_at_mut(len);
            views.push((offset, head));
            offset += len;
            rest = tail;
        }
    }
    let lossy = comm.codec().is_lossy();
    let mut p_time = 0.0f64;
    let mut local_sq = 0.0f64;
    let (comm, feedback, busy, buckets, exposed) = thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, &mut [f32])>();
        let worker = s.spawn(move || {
            let mut feedback = feedback;
            let codec = comm.codec();
            let mut busy = Duration::ZERO;
            let mut buckets: Vec<AllReduceBucket> = Vec::new();
            for (i, (offset, slice)) in rx.into_iter().enumerate() {
                let t = Instant::now();
                let bytes_before = comm.bytes_sent();
                match feedback.as_mut().filter(|_| lossy) {
                    Some(ef) => {
                        ef.compensate(slice, offset);
                        for v in slice.iter_mut() {
                            *v *= weight;
                        }
                        let ideal = slice.to_vec();
                        codec.quantize(slice);
                        let scale = if weight != 0.0 { 1.0 / weight } else { 0.0 };
                        ef.record(&ideal, slice, offset, scale);
                        comm.all_reduce_sum(slice);
                    }
                    None => comm.weighted_all_reduce(slice, weight),
                }
                let wall = t.elapsed();
                busy += wall;
                buckets.push(AllReduceBucket {
                    bucket: i as u32,
                    elems: slice.len() as u64,
                    wall_ns: wall.as_nanos() as u64,
                    bytes: comm.bytes_sent() - bytes_before,
                });
            }
            (comm, feedback, busy, buckets)
        });
        // Tail-first backward: the bucket nearest the loss is ready (and on
        // the wire) first.
        let mut cur = loss_grad.clone();
        for layer in model.layers_mut().iter_mut().rev() {
            let t = Instant::now();
            cur = layer.backward(&cur);
            let layer_elapsed = t.elapsed().as_secs_f64();
            p_time += layer_elapsed;
            let (offset, slice) = views.pop().expect("one view per layer");
            let mut filled = 0usize;
            for p in layer.parameters() {
                let len = p.len();
                slice[filled..filled + len].copy_from_slice(p.grad.data());
                filled += len;
            }
            local_sq += slice.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
            if slowdown > 1.0 {
                thread::sleep(Duration::from_secs_f64(layer_elapsed * (slowdown - 1.0)));
            }
            // Parameterless layers contribute no bucket (identically on
            // every rank, so the collective order stays in lockstep).
            if !slice.is_empty() {
                tx.send((offset, slice)).expect("comm worker alive");
            }
        }
        drop(tx);
        let wait = Instant::now();
        let (comm, feedback, busy, buckets) = worker.join().expect("comm worker panicked");
        (comm, feedback, busy, buckets, wait.elapsed())
    });
    if telemetry::enabled() {
        for b in buckets {
            telemetry::emit(Event::AllReduceBucket(b));
        }
    }
    let comm_time = busy.as_secs_f64();
    let overlap = (comm_time - exposed.as_secs_f64()).max(0.0);
    OverlapOutcome { comm, feedback, p_time, comm_time, overlap, local_sq }
}

fn evaluate(model: &mut Sequential, dataset: &ClassificationDataset) -> f64 {
    let sample: Vec<usize> = (0..dataset.len().min(512)).collect();
    let (x, y) = dataset.batch(&sample);
    minidnn::models::accuracy(model, &x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidnn::data::gaussian_blobs;
    use minidnn::models::mlp_classifier;

    fn config(adaptive: bool) -> ParallelConfig {
        ParallelConfig {
            slowdowns: vec![1.0, 2.0],
            base_batch: 32,
            max_batch: 128,
            adaptive,
            base_lr: 0.05,
            lr_scaler: LrScaler::AdaScale,
            seed: 5,
            comm_faults: None,
            retry: RetryPolicy::default(),
            transport: TransportKind::InProcess,
            codec: Codec::None,
            overlap: false,
        }
    }

    fn trainer(adaptive: bool) -> ParallelTrainer {
        let ds = gaussian_blobs(640, 4, 10, 3);
        ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(config(adaptive))
            .build()
            .expect("valid config")
    }

    #[test]
    fn replicas_learn_the_task() {
        let mut t = trainer(false);
        let mut last = None;
        for _ in 0..4 {
            last = Some(t.run_epoch().expect("epoch"));
        }
        let report = last.unwrap();
        assert!(report.comm_bytes > 0, "gradient exchange must move bytes");
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.mean_loss < 0.5, "loss {}", report.mean_loss);
    }

    #[test]
    fn gns_becomes_available() {
        let mut t = trainer(false);
        let r = t.run_epoch().expect("epoch");
        assert!(r.noise_scale.is_some(), "GNS should be estimable after one epoch");
        assert!(r.noise_scale.unwrap() > 0.0);
    }

    #[test]
    fn split_adapts_to_slowdown() {
        // Thread timings on loaded CI machines are noisy, so judge the
        // *cumulative* allocation over several post-bootstrap epochs
        // rather than a single epoch's split.
        let mut t = trainer(false);
        let mut fast_total = 0u64;
        let mut slow_total = 0u64;
        let mut model_epochs = 0;
        for epoch in 0..6 {
            let r = t.run_epoch().expect("epoch");
            if epoch >= 2 {
                fast_total += r.local_batches[0];
                slow_total += r.local_batches[1];
                model_epochs += usize::from(r.used_model);
            }
        }
        assert!(
            fast_total > slow_total,
            "the 1x node should receive more work overall: {fast_total} vs {slow_total}"
        );
        assert!(model_epochs >= 1, "the learned model should engage at least once");
    }

    #[test]
    fn losses_decrease_over_epochs() {
        let mut t = trainer(false);
        let first = t.run_epoch().expect("epoch");
        let mut last = t.run_epoch().expect("epoch");
        for _ in 0..2 {
            last = t.run_epoch().expect("epoch");
        }
        assert!(last.mean_loss < first.mean_loss, "{} -> {}", first.mean_loss, last.mean_loss);
    }

    #[test]
    fn resilient_path_is_numerically_identical_to_clean() {
        // Same seed, same even epoch-0 split; the retried gradient
        // exchanges must produce bit-identical models — the strongest form
        // of "no sample lost, none double-counted".
        let clean = trainer(false).run_epoch().expect("epoch");
        let faulty = {
            let mut cfg = config(false);
            cfg.comm_faults = Some(CommFaultPlan::new().fail_at(0, 1).fail_at(5, 2).fail_at(12, 1));
            cfg.retry = RetryPolicy {
                base_backoff: std::time::Duration::from_micros(10),
                max_backoff: std::time::Duration::from_micros(100),
                ..RetryPolicy::default()
            };
            let ds = gaussian_blobs(640, 4, 10, 3);
            let mut t = ParallelTrainer::builder()
                .dataset(ds)
                .model(|seed| mlp_classifier(10, 24, 4, seed))
                .config(cfg)
                .build()
                .expect("valid config");
            t.run_epoch().expect("epoch")
        };
        assert!(faulty.comm_retries > 0, "the seeded plan must inject failures");
        assert_eq!(clean.comm_retries, 0);
        assert_eq!(clean.mean_loss, faulty.mean_loss, "losses computed before the exchange");
        assert_eq!(clean.accuracy, faulty.accuracy, "weights after recovery must match bitwise");
        assert_eq!(clean.noise_scale, faulty.noise_scale, "GNS inputs must be unaffected");
    }

    #[test]
    fn rank_crash_between_epochs_recovers() {
        let ds = gaussian_blobs(640, 4, 10, 3);
        let mut cfg = config(false);
        cfg.slowdowns = vec![1.0, 1.0, 2.0];
        let mut t = ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(cfg)
            .build()
            .expect("valid config");
        let before = t.run_epoch().expect("epoch");
        assert_eq!(before.local_batches.len(), 3);
        t.remove_rank(2);
        assert_eq!(t.world_size(), 2);
        let mut last = t.run_epoch().expect("epoch");
        assert_eq!(last.local_batches.len(), 2, "group shrinks to the survivors");
        assert_eq!(last.local_batches.iter().sum::<u64>(), last.total_batch);
        for _ in 0..2 {
            last = t.run_epoch().expect("epoch");
        }
        assert!(
            last.mean_loss < before.mean_loss,
            "training continues from the shared weights: {} -> {}",
            before.mean_loss,
            last.mean_loss
        );
    }

    #[test]
    fn bf16_codec_cuts_comm_bytes_and_still_learns() {
        let baseline = trainer(false).run_epoch().expect("epoch").comm_bytes;
        let ds = gaussian_blobs(640, 4, 10, 3);
        let mut t = ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(config(false))
            .codec(Codec::Bf16)
            .build()
            .expect("valid config");
        let mut last = None;
        for _ in 0..4 {
            last = Some(t.run_epoch().expect("epoch"));
        }
        let report = last.unwrap();
        // 2-byte payloads halve the gradient bytes; the f64 metric gathers
        // stay uncompressed, so the total lands just under 50%.
        assert!(
            (report.comm_bytes as f64) < 0.55 * baseline as f64,
            "bf16 should cut wire bytes by ≥45%: {} vs {baseline}",
            report.comm_bytes
        );
        assert!(report.accuracy > 0.9, "error feedback keeps convergence: {}", report.accuracy);
        assert!(report.mean_loss < 0.5, "loss {}", report.mean_loss);
    }

    #[test]
    fn overlapped_exchange_learns_and_reports_hidden_comm() {
        let ds = gaussian_blobs(640, 4, 10, 3);
        let mut cfg = config(false);
        cfg.overlap = true;
        let mut t = ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(cfg)
            .build()
            .expect("valid config");
        let mut overlap_total = 0.0;
        let mut last = None;
        for _ in 0..4 {
            let r = t.run_epoch().expect("epoch");
            overlap_total += r.comm_overlap;
            last = Some(r);
        }
        let report = last.unwrap();
        assert!(report.comm_bytes > 0, "bucketed exchange still moves bytes");
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(
            overlap_total > 0.0,
            "per-layer buckets must hide some communication behind backward compute"
        );
    }

    #[test]
    fn overlapped_lossy_exchange_keeps_replicas_consistent() {
        // The strongest cross-check: overlap + bf16 + error feedback, with
        // replica agreement enforced implicitly (a divergent replica would
        // wreck accuracy within an epoch or two).
        let ds = gaussian_blobs(640, 4, 10, 3);
        let mut cfg = config(false);
        cfg.overlap = true;
        cfg.codec = Codec::Bf16;
        let mut t = ParallelTrainer::builder()
            .dataset(ds)
            .model(|seed| mlp_classifier(10, 24, 4, seed))
            .config(cfg)
            .build()
            .expect("valid config");
        let mut last = None;
        for _ in 0..4 {
            last = Some(t.run_epoch().expect("epoch"));
        }
        let report = last.unwrap();
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.mean_loss < 0.5, "loss {}", report.mean_loss);
    }

    #[test]
    fn rank_join_between_epochs_grows_the_group() {
        let mut t = trainer(false);
        t.run_epoch().expect("epoch");
        t.add_rank(1.0);
        assert_eq!(t.world_size(), 3);
        let r = t.run_epoch().expect("epoch");
        assert_eq!(r.local_batches.len(), 3, "newcomer gets a share");
        assert!(r.local_batches.iter().all(|&b| b >= 1));
        assert_eq!(r.local_batches.iter().sum::<u64>(), r.total_batch);
    }
}
