//! Shared regression-gate checks for the `*gate` binaries.
//!
//! Both `perfgate` (raw-speed trajectory) and `fleetgate` (fleet
//! scheduling trajectory) compare a fresh measurement against a committed
//! baseline and fail on regressions. This module gives them one check
//! type and one message format, so a failing CI run always prints, for
//! every offending metric, the current value, the baseline it was
//! compared against, and the threshold it violated — no "gate failed"
//! without the numbers to debug it.

use std::collections::BTreeMap;
use std::fmt;

use cannikin_telemetry::Json;

/// Which side of the limit is the passing side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The metric must stay **at or above** the limit (speedups, ratios).
    Floor,
    /// The metric must stay **at or below** the limit (errors, times).
    Ceiling,
}

/// One gated metric: the fresh measurement, the committed baseline, and
/// the derived limit it is held to.
#[derive(Debug, Clone)]
pub enum GateCheck {
    /// A metric that was measured and compared.
    Measured {
        /// Metric name as printed.
        name: String,
        /// Freshly measured value.
        current: f64,
        /// Committed baseline value.
        baseline: f64,
        /// Passing side of `limit`.
        bound: Bound,
        /// The limit derived from the baseline and tolerance.
        limit: f64,
        /// Allowed regression fraction the limit was derived with.
        tolerance: f64,
    },
    /// A metric that could not be measured here (never fails the gate).
    Skipped {
        /// Metric name as printed.
        name: String,
        /// Why it was skipped.
        reason: String,
    },
}

impl GateCheck {
    /// A floor check: `current >= limit` passes.
    pub fn floor(name: impl Into<String>, current: f64, baseline: f64, limit: f64, tolerance: f64) -> Self {
        GateCheck::Measured { name: name.into(), current, baseline, bound: Bound::Floor, limit, tolerance }
    }

    /// A ceiling check: `current <= limit` passes.
    pub fn ceiling(name: impl Into<String>, current: f64, baseline: f64, limit: f64, tolerance: f64) -> Self {
        GateCheck::Measured { name: name.into(), current, baseline, bound: Bound::Ceiling, limit, tolerance }
    }

    /// A check skipped on this machine (counts as passing).
    pub fn skipped(name: impl Into<String>, reason: impl Into<String>) -> Self {
        GateCheck::Skipped { name: name.into(), reason: reason.into() }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        match self {
            GateCheck::Measured { name, .. } | GateCheck::Skipped { name, .. } => name,
        }
    }

    /// Whether this check passes the gate.
    pub fn passes(&self) -> bool {
        match self {
            GateCheck::Measured { current, bound: Bound::Floor, limit, .. } => current >= limit,
            GateCheck::Measured { current, bound: Bound::Ceiling, limit, .. } => current <= limit,
            GateCheck::Skipped { .. } => true,
        }
    }
}

/// The one-line report format. Every measured line carries current,
/// baseline, limit and tolerance; a failing line additionally names the
/// violated side, so the CI log alone is enough to diagnose a regression:
///
/// ```text
/// PASS simd_speedup: current 2.5000 vs baseline 2.6000 (floor 2.3400, tolerance 10%)
/// FAIL simd_speedup: current 1.9000 vs baseline 2.6000 — below floor 2.3400 (tolerance 10%)
/// SKIP simd_speedup: AVX2 unavailable on this machine
/// ```
impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateCheck::Skipped { name, reason } => write!(f, "SKIP {name}: {reason}"),
            GateCheck::Measured { name, current, baseline, bound, limit, tolerance } => {
                let side = match bound {
                    Bound::Floor => "floor",
                    Bound::Ceiling => "ceiling",
                };
                let tol = format!("tolerance {:.0}%", tolerance * 100.0);
                if self.passes() {
                    write!(f, "PASS {name}: current {current:.4} vs baseline {baseline:.4} ({side} {limit:.4}, {tol})")
                } else {
                    let violation = match bound {
                        Bound::Floor => "below",
                        Bound::Ceiling => "above",
                    };
                    write!(
                        f,
                        "FAIL {name}: current {current:.4} vs baseline {baseline:.4} — {violation} {side} {limit:.4} ({tol})"
                    )
                }
            }
        }
    }
}

/// Read and parse a committed baseline file. A missing or corrupt
/// baseline is the most common first-run failure, so every error spells
/// out where the file was expected and the exact command that regenerates
/// it — shared by `perfgate`, `fleetgate` and `scenariogate`.
pub fn load_baseline_json(path: &str, regen_command: &str) -> Result<Json, String> {
    let regen = format!("expected a committed baseline at `{path}`; regenerate with\n  {regen_command}");
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}\n{regen}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}\n{regen}"))
}

/// Compare two metric maps under one bound and tolerance, producing one
/// check per metric seen on either side:
///
/// - a metric in both maps gates normally (floor `baseline·(1−tol)`,
///   ceiling `baseline·(1+tol)`);
/// - a **non-finite baseline** (NaN/∞ from a division in an old run)
///   cannot derive a limit and is skipped, not failed;
/// - a metric **missing from the current run** that the baseline has is a
///   *failing* check (recorded with a NaN current value, which passes
///   neither bound) — silently dropping a measurement must not pass CI;
/// - a metric **only in the current run** is skipped: adding a new
///   measurement never breaks the gate until the baseline is regenerated.
///
/// A zero baseline under a floor yields the trivial limit 0 — it gates
/// nothing but stays visible in the report.
pub fn compare_metric_maps(
    prefix: &str,
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    bound: Bound,
    tolerance: f64,
) -> Vec<GateCheck> {
    let mut checks = Vec::new();
    for (name, &base) in baseline {
        let label = format!("{prefix}{name}");
        if !base.is_finite() {
            checks.push(GateCheck::skipped(label, format!("baseline value {base} is not finite")));
            continue;
        }
        let limit = match bound {
            Bound::Floor => base * (1.0 - tolerance),
            Bound::Ceiling => base * (1.0 + tolerance),
        };
        let cur = current.get(name).copied().unwrap_or(f64::NAN);
        checks.push(match bound {
            Bound::Floor => GateCheck::floor(label, cur, base, limit, tolerance),
            Bound::Ceiling => GateCheck::ceiling(label, cur, base, limit, tolerance),
        });
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            checks.push(GateCheck::skipped(
                format!("{prefix}{name}"),
                "no baseline recorded (new metric)".to_string(),
            ));
        }
    }
    checks
}

/// Render every check (one line each) and report whether all passed.
pub fn render_all(checks: &[GateCheck]) -> (String, bool) {
    let mut out = String::new();
    let mut all_pass = true;
    for check in checks {
        out.push_str(&check.to_string());
        out.push('\n');
        all_pass &= check.passes();
    }
    (out, all_pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_line_format_is_stable() {
        let check = GateCheck::floor("simd_speedup", 2.5, 2.6, 2.34, 0.10);
        assert!(check.passes());
        assert_eq!(
            check.to_string(),
            "PASS simd_speedup: current 2.5000 vs baseline 2.6000 (floor 2.3400, tolerance 10%)"
        );
    }

    #[test]
    fn fail_line_names_the_violated_floor() {
        let check = GateCheck::floor("simd_speedup", 1.9, 2.6, 2.34, 0.10);
        assert!(!check.passes());
        assert_eq!(
            check.to_string(),
            "FAIL simd_speedup: current 1.9000 vs baseline 2.6000 — below floor 2.3400 (tolerance 10%)"
        );
    }

    #[test]
    fn fail_line_names_the_violated_ceiling() {
        let check = GateCheck::ceiling("bf16_rel_error", 0.05, 0.001, 0.01, 1.0);
        assert!(!check.passes());
        assert_eq!(
            check.to_string(),
            "FAIL bf16_rel_error: current 0.0500 vs baseline 0.0010 — above ceiling 0.0100 (tolerance 100%)"
        );
    }

    #[test]
    fn skipped_checks_always_pass() {
        let check = GateCheck::skipped("simd_speedup", "AVX2 unavailable on this machine");
        assert!(check.passes());
        assert_eq!(check.to_string(), "SKIP simd_speedup: AVX2 unavailable on this machine");
        assert_eq!(check.name(), "simd_speedup");
    }

    #[test]
    fn boundary_values_pass_on_both_sides() {
        assert!(GateCheck::floor("x", 2.0, 2.0, 2.0, 0.0).passes(), "exactly at the floor passes");
        assert!(GateCheck::ceiling("x", 2.0, 2.0, 2.0, 0.0).passes(), "exactly at the ceiling passes");
    }

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn missing_baseline_file_names_the_path_and_regen_command() {
        let err = load_baseline_json("/nonexistent/BENCH_x.json", "cargo run --bin xgate -- --write-baseline …")
            .expect_err("missing file must error");
        assert!(err.contains("/nonexistent/BENCH_x.json"), "error names the path: {err}");
        assert!(err.contains("--write-baseline"), "error carries the regen command: {err}");
    }

    #[test]
    fn corrupt_baseline_is_invalid_json_not_a_panic() {
        let dir = std::env::temp_dir().join("cannikin-gate-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").expect("write");
        let err = load_baseline_json(path.to_str().expect("utf8 path"), "regen-cmd").expect_err("must error");
        assert!(err.contains("invalid JSON"), "{err}");
        assert!(err.contains("regen-cmd"), "{err}");
    }

    #[test]
    fn metric_missing_from_current_fails_the_gate() {
        let checks =
            compare_metric_maps("cell/", &map(&[]), &map(&[("goodput", 10.0)]), Bound::Floor, 0.1);
        assert_eq!(checks.len(), 1);
        assert!(!checks[0].passes(), "a dropped measurement must not pass: {}", checks[0]);
        assert_eq!(checks[0].name(), "cell/goodput");
    }

    #[test]
    fn metric_only_in_current_is_skipped_not_failed() {
        let checks =
            compare_metric_maps("cell/", &map(&[("new_metric", 5.0)]), &map(&[]), Bound::Floor, 0.1);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].passes(), "a new metric must not fail until the baseline is regenerated");
        assert!(matches!(checks[0], GateCheck::Skipped { .. }));
    }

    #[test]
    fn nan_baseline_is_skipped_not_compared() {
        let checks = compare_metric_maps(
            "",
            &map(&[("ratio", 1.0)]),
            &map(&[("ratio", f64::NAN)]),
            Bound::Floor,
            0.1,
        );
        assert_eq!(checks.len(), 1);
        assert!(matches!(checks[0], GateCheck::Skipped { .. }), "NaN baseline cannot derive a limit");
        assert!(checks[0].passes());
    }

    #[test]
    fn zero_baseline_floor_is_trivial_but_nan_current_still_fails() {
        let ok = compare_metric_maps("", &map(&[("faults", 0.0)]), &map(&[("faults", 0.0)]), Bound::Floor, 0.1);
        assert!(ok[0].passes(), "zero baseline floors at 0, any finite value passes");
        let bad =
            compare_metric_maps("", &map(&[("faults", f64::NAN)]), &map(&[("faults", 0.0)]), Bound::Floor, 0.1);
        assert!(!bad[0].passes(), "a NaN measurement passes no bound");
    }

    #[test]
    fn matched_metrics_gate_on_both_bounds() {
        let current = map(&[("goodput", 9.5), ("bytes", 110.0)]);
        let baseline = map(&[("goodput", 10.0), ("bytes", 100.0)]);
        let floors = compare_metric_maps("", &current, &baseline, Bound::Floor, 0.10);
        assert!(floors.iter().find(|c| c.name() == "goodput").expect("present").passes(), "9.5 >= 9.0");
        let ceilings = compare_metric_maps("", &current, &baseline, Bound::Ceiling, 0.05);
        assert!(!ceilings.iter().find(|c| c.name() == "bytes").expect("present").passes(), "110 > 105");
    }

    #[test]
    fn render_all_aggregates_and_reports_failure() {
        let checks = vec![
            GateCheck::floor("a", 2.0, 2.0, 1.8, 0.10),
            GateCheck::floor("b", 1.0, 2.0, 1.8, 0.10),
            GateCheck::skipped("c", "not on this machine"),
        ];
        let (text, all_pass) = render_all(&checks);
        assert!(!all_pass, "one failing check fails the gate");
        assert_eq!(text.lines().count(), 3, "one line per check");
        assert!(text.lines().nth(1).expect("line").starts_with("FAIL b:"));
    }
}
