//! Error type shared across `minidnn`.

use std::error::Error;
use std::fmt;

/// Errors produced by `minidnn` operations.
///
/// Most tensor kernels panic on programmer errors (shape mismatches caught
/// by `debug_assert!`-style checks) because silently propagating a bad shape
/// through a training loop is worse than failing fast; `DnnError` is used on
/// the fallible API surface (construction from user input, dataset loading).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnError {
    /// A tensor was constructed from data whose length does not match the
    /// product of the requested dimensions.
    ShapeMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements supplied.
        len: usize,
    },
    /// Two tensors participating in a binary operation had incompatible
    /// shapes.
    IncompatibleShapes {
        /// Left operand shape.
        left: Vec<usize>,
        /// Right operand shape.
        right: Vec<usize>,
        /// Name of the operation.
        op: &'static str,
    },
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { shape, len } => {
                write!(f, "shape {shape:?} requires {} elements, got {len}", shape.iter().product::<usize>())
            }
            DnnError::IncompatibleShapes { left, right, op } => {
                write!(f, "incompatible shapes for {op}: {left:?} vs {right:?}")
            }
            DnnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = DnnError::ShapeMismatch { shape: vec![2, 3], len: 5 };
        assert_eq!(err.to_string(), "shape [2, 3] requires 6 elements, got 5");
    }

    #[test]
    fn display_incompatible() {
        let err = DnnError::IncompatibleShapes { left: vec![2], right: vec![3], op: "add" };
        assert!(err.to_string().contains("add"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
