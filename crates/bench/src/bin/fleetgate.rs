//! Fleet regression gate over the `BENCH_fleet.json` trajectory.
//!
//! Re-runs the pinned fleet traces (adaptive allocator vs FIFO vs static
//! partition), writes the fresh report, and fails if any gated *ratio*
//! regressed against the committed baseline — or if the adaptive
//! allocator ever stops strictly beating both baselines on aggregate
//! goodput and makespan (the PR's headline claim). Unlike `perfgate`,
//! every number here is simulated time from seeded traces, so the
//! default tolerance is tight: the gate flags scheduler behavior
//! changes, not machine noise.
//!
//! ```text
//! fleetgate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]
//! ```
//!
//! With `--write-baseline` the fresh report is written to that path and
//! no comparison happens (how the committed baseline is produced).

use cannikin_bench::experiments::{fleet_report, FleetBenchReport};
use cannikin_bench::gate::{load_baseline_json, render_all, GateCheck};
use std::process::ExitCode;

struct Args {
    baseline: Option<String>,
    out: Option<String>,
    max_regression: f64,
    write_baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        out: None,
        max_regression: 0.02,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--out" => args.out = Some(value("--out")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--max-regression" => {
                let raw = value("--max-regression")?;
                let frac: f64 =
                    raw.parse().map_err(|_| format!("--max-regression: `{raw}` is not a number"))?;
                if !(0.0..1.0).contains(&frac) {
                    return Err(format!("--max-regression must be in [0, 1), got {frac}"));
                }
                args.max_regression = frac;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.baseline.is_none() && args.write_baseline.is_none() {
        return Err("need --baseline PATH (gate mode) or --write-baseline PATH".into());
    }
    Ok(args)
}

fn load_baseline(path: &str) -> Result<FleetBenchReport, String> {
    let regen = format!("cargo run --release -p cannikin-bench --bin fleetgate -- --write-baseline {path}");
    let json = load_baseline_json(path, &regen)?;
    FleetBenchReport::from_json(&json).map_err(|e| format!("{path}: {e}\n{regen}"))
}

/// The gated ratios, per pinned trace. Floors never drop below 1.0:
/// even a generous baseline cannot excuse the adaptive allocator losing
/// to a baseline policy outright.
fn gates(fresh: &FleetBenchReport, base: &FleetBenchReport, tol: f64) -> Vec<GateCheck> {
    let mut checks = Vec::new();
    for f in &fresh.traces {
        let Some(b) = base.traces.iter().find(|t| t.seed == f.seed) else {
            checks.push(GateCheck::skipped(
                format!("s{}", f.seed),
                "trace seed absent from baseline (baseline refresh needed)",
            ));
            continue;
        };
        let ratios: [(&str, f64, f64); 4] = [
            ("goodput_vs_fifo", f.goodput_vs_fifo(), b.goodput_vs_fifo()),
            ("goodput_vs_static", f.goodput_vs_static(), b.goodput_vs_static()),
            ("makespan_vs_fifo", f.makespan_vs_fifo(), b.makespan_vs_fifo()),
            ("makespan_vs_static", f.makespan_vs_static(), b.makespan_vs_static()),
        ];
        for (name, current, baseline) in ratios {
            checks.push(GateCheck::floor(
                format!("s{}.{name}", f.seed),
                current,
                baseline,
                (baseline * (1.0 - tol)).max(1.0),
                tol,
            ));
        }
        // Fairness guards the allocator's other promise: winning on
        // goodput must not come from starving low-priority tenants.
        checks.push(GateCheck::floor(
            format!("s{}.fairness", f.seed),
            f.cannikin.fairness,
            b.cannikin.fairness,
            b.cannikin.fairness * (1.0 - tol),
            tol,
        ));
    }
    checks
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleetgate: {e}");
            eprintln!("usage: fleetgate [--baseline PATH] [--out PATH] [--max-regression FRAC] [--write-baseline PATH]");
            return ExitCode::from(2);
        }
    };

    eprintln!("fleetgate: replaying pinned fleet traces (3 policies each)...");
    let fresh = fleet_report();
    let rendered = fresh.to_json().to_string_compact();

    for path in args.write_baseline.iter().chain(args.out.iter()) {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("fleetgate: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("fleetgate: wrote {path}");
    }
    if args.write_baseline.is_some() {
        return ExitCode::SUCCESS;
    }

    let base = match load_baseline(args.baseline.as_deref().expect("checked in parse_args")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("fleetgate: {e}");
            return ExitCode::from(2);
        }
    };

    let checks = gates(&fresh, &base, args.max_regression);
    let (rendered_checks, all_pass) = render_all(&checks);
    print!("{rendered_checks}");
    if all_pass {
        println!("fleetgate: all ratios within tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("fleetgate: fleet scheduling regressed against the committed baseline");
        ExitCode::FAILURE
    }
}
