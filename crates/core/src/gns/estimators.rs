//! The per-node unbiased estimators of Eq. (10).

use crate::error::CannikinError;

/// What one node contributes to the GNS computation for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientSample {
    /// The node's local batch size `bᵢ`.
    pub local_batch: u64,
    /// Squared L2 norm of the node's *mean* local gradient `|gᵢ|²`.
    pub local_sq_norm: f64,
}

/// One node's unbiased local estimates (Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalEstimates {
    /// `𝒢ᵢ` — unbiased estimate of `|G|²`.
    pub g: f64,
    /// `𝒮ᵢ` — unbiased estimate of `tr(Σ)`.
    pub s: f64,
}

/// Cluster-level GNS numerator/denominator for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnsEstimate {
    /// Aggregated estimate of `|G|²`.
    pub grad_sq: f64,
    /// Aggregated estimate of `tr(Σ)`.
    pub trace: f64,
}

impl GnsEstimate {
    /// The raw (unsmoothed) noise scale `tr(Σ)/|G|²`, or `None` when the
    /// gradient-norm estimate is non-positive.
    pub fn noise_scale(&self) -> Option<f64> {
        (self.grad_sq > 0.0 && self.trace > 0.0).then(|| self.trace / self.grad_sq)
    }
}

/// Compute every node's Eq. (10) estimates.
///
/// # Errors
///
/// - fewer than two samples (the estimators need `B > bᵢ`);
/// - any `bᵢ = 0` or `bᵢ ≥ B`;
/// - non-finite norms.
pub fn local_estimates(
    samples: &[GradientSample],
    global_sq_norm: f64,
) -> Result<Vec<LocalEstimates>, CannikinError> {
    if samples.len() < 2 {
        return Err(CannikinError::InvalidEstimate(
            "gradient noise estimation needs at least two nodes".into(),
        ));
    }
    if !global_sq_norm.is_finite() || global_sq_norm < 0.0 {
        return Err(CannikinError::InvalidEstimate(format!(
            "global gradient norm must be finite and non-negative, got {global_sq_norm}"
        )));
    }
    let total: u64 = samples.iter().map(|s| s.local_batch).sum();
    let b_total = total as f64;
    samples
        .iter()
        .map(|sample| {
            let b = sample.local_batch as f64;
            if sample.local_batch == 0 || sample.local_batch >= total {
                return Err(CannikinError::InvalidEstimate(format!(
                    "local batch {b} invalid for global batch {total}"
                )));
            }
            if !sample.local_sq_norm.is_finite() || sample.local_sq_norm < 0.0 {
                return Err(CannikinError::InvalidEstimate(format!(
                    "local gradient norm must be finite and non-negative, got {}",
                    sample.local_sq_norm
                )));
            }
            let g = (b_total * global_sq_norm - b * sample.local_sq_norm) / (b_total - b);
            let s = b * b_total / (b_total - b) * (sample.local_sq_norm - global_sq_norm);
            Ok(LocalEstimates { g, s })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // B = 12, b0 = 4, b1 = 8.
        let samples = [
            GradientSample { local_batch: 4, local_sq_norm: 3.0 },
            GradientSample { local_batch: 8, local_sq_norm: 2.0 },
        ];
        let est = local_estimates(&samples, 1.5).unwrap();
        // 𝒢₀ = (12·1.5 − 4·3)/8 = 0.75 ; 𝒮₀ = (4·12/8)(3 − 1.5) = 9
        assert!((est[0].g - 0.75).abs() < 1e-12);
        assert!((est[0].s - 9.0).abs() < 1e-12);
        // 𝒢₁ = (18 − 16)/4 = 0.5 ; 𝒮₁ = (8·12/4)(0.5) = 12
        assert!((est[1].g - 0.5).abs() < 1e-12);
        assert!((est[1].s - 12.0).abs() < 1e-12);
    }

    #[test]
    fn unbiasedness_monte_carlo() {
        // Synthetic gradient model: per-sample gradient = G + ε with
        // ε ~ N(0, σ²I_d). Then E|g_b|² = |G|² + d·σ²/b exactly.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let d = 20usize;
        let g_true: Vec<f64> = (0..d).map(|i| 0.1 * (i as f64 - 10.0)).collect();
        let g_sq: f64 = g_true.iter().map(|v| v * v).sum();
        let sigma2 = 0.5f64;
        let trace = d as f64 * sigma2;
        let batches = [6u64, 18];
        let total: u64 = batches.iter().sum();

        let trials = 4000;
        let mut mean_g = [0.0f64; 2];
        let mut mean_s = [0.0f64; 2];
        for _ in 0..trials {
            // Draw each node's mean gradient: G + N(0, σ²/bᵢ) per coord.
            let mut locals = Vec::new();
            let mut global = vec![0.0f64; d];
            for &b in &batches {
                let gi: Vec<f64> = g_true
                    .iter()
                    .map(|&gv| gv + normal(&mut rng) * (sigma2 / b as f64).sqrt())
                    .collect();
                for (acc, v) in global.iter_mut().zip(&gi) {
                    *acc += b as f64 / total as f64 * v;
                }
                locals.push(gi);
            }
            let g_norm: f64 = global.iter().map(|v| v * v).sum();
            let samples: Vec<GradientSample> = batches
                .iter()
                .zip(&locals)
                .map(|(&b, gi)| GradientSample {
                    local_batch: b,
                    local_sq_norm: gi.iter().map(|v| v * v).sum(),
                })
                .collect();
            let est = local_estimates(&samples, g_norm).unwrap();
            for i in 0..2 {
                mean_g[i] += est[i].g / trials as f64;
                mean_s[i] += est[i].s / trials as f64;
            }
        }
        for i in 0..2 {
            assert!((mean_g[i] / g_sq - 1.0).abs() < 0.05, "E[𝒢_{i}] = {} vs {g_sq}", mean_g[i]);
            assert!((mean_s[i] / trace - 1.0).abs() < 0.05, "E[𝒮_{i}] = {} vs {trace}", mean_s[i]);
        }
    }

    fn normal(rng: &mut rand::rngs::StdRng) -> f64 {
        use rand::RngExt;
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let ok = GradientSample { local_batch: 4, local_sq_norm: 1.0 };
        assert!(local_estimates(&[ok], 1.0).is_err());
        let zero = GradientSample { local_batch: 0, local_sq_norm: 1.0 };
        assert!(local_estimates(&[ok, zero], 1.0).is_err());
        assert!(local_estimates(&[ok, ok], f64::NAN).is_err());
        let neg = GradientSample { local_batch: 4, local_sq_norm: -1.0 };
        assert!(local_estimates(&[ok, neg], 1.0).is_err());
    }

    #[test]
    fn noise_scale_guard() {
        assert_eq!(GnsEstimate { grad_sq: 2.0, trace: 8.0 }.noise_scale(), Some(4.0));
        assert_eq!(GnsEstimate { grad_sq: -1.0, trace: 8.0 }.noise_scale(), None);
        assert_eq!(GnsEstimate { grad_sq: 1.0, trace: 0.0 }.noise_scale(), None);
    }
}
