//! Observation records shared by the simulator and the analyzer.
//!
//! These types used to live in `hetsim::trace`; they moved here so the
//! simulator, the engine, and the exporters all speak one format (`hetsim`
//! re-exports them, so existing code keeps compiling). They are the *only*
//! things the Cannikin analyzer is allowed to see — the ground-truth
//! coefficients stay inside the simulator, exactly as a real cluster's
//! physics stay inside the hardware.

use crate::event::{Event, FaultInjected, StepTiming};
use serde::{Deserialize, Serialize};

/// What one node measures about itself during one batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// Node index within the cluster.
    pub node: usize,
    /// Local batch size this node trained.
    pub local_batch: u64,
    /// Measured `a_i` (data loading + forward + parameter update), s.
    pub a_time: f64,
    /// Measured backpropagation time `P_i`, s.
    pub p_time: f64,
    /// Measured first-bucket-ready point `syncStart_i`, s from batch start.
    pub sync_start: f64,
    /// This node's (noisy) estimate of the overlap ratio γ.
    pub gamma_obs: f64,
    /// This node's (noisy) estimate of the total gradient-synchronization
    /// time `T_comm`, s.
    pub t_comm_obs: f64,
    /// This node's (noisy) estimate of the last-bucket time `T_u`, s.
    pub t_u_obs: f64,
    /// Relative variance of this node's γ/`T_comm` measurements
    /// (`σ_i²` in the inverse-variance weighting of §4.5).
    pub rel_variance: f64,
}

impl NodeObservation {
    /// This observation as a telemetry [`StepTiming`] event. Non-finite
    /// measurements (a node that saw no synchronization this micro-batch)
    /// export as `0.0`.
    pub fn step_timing(&self, step: u64) -> Event {
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        Event::StepTiming(StepTiming {
            step,
            rank: self.node as u32,
            b_i: self.local_batch,
            t_compute: self.a_time + self.p_time,
            t_comm: finite(self.t_comm_obs),
            overlap: finite(self.gamma_obs),
        })
    }
}

/// The timing outcome of one synchronized training batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTrace {
    /// Per-node measurements, indexed by node.
    pub observations: Vec<NodeObservation>,
    /// Wall-clock time of the batch (all nodes finish the last bucket), s.
    pub batch_time: f64,
    /// Completion time of each gradient bucket's synchronization, in
    /// reduction order, s from batch start.
    pub bucket_sync_end: Vec<f64>,
    /// Faults that fired during this batch (empty on healthy batches).
    /// A batch whose faults include a crash or an exhausted comm timeout
    /// carries no usable observations — see [`BatchTrace::is_failed`].
    #[serde(default)]
    pub faults: Vec<FaultInjected>,
}

impl BatchTrace {
    /// The straggler's total compute time, s.
    pub fn max_compute(&self) -> f64 {
        self.observations.iter().map(|o| o.a_time + o.p_time).fold(0.0, f64::max)
    }

    /// Whether the batch failed outright: the gradients never synchronized,
    /// so no sample from it may be counted.
    pub fn is_failed(&self) -> bool {
        use crate::event::FaultKind;
        self.faults.iter().any(|f| matches!(f.kind, FaultKind::NodeCrash | FaultKind::CommTimeout))
    }
}

/// The timing outcome of a full epoch (many batches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    /// Every batch of the epoch, in order.
    pub batches: Vec<BatchTrace>,
    /// Total epoch wall-clock time, s.
    pub epoch_time: f64,
}

impl EpochTrace {
    /// Mean batch time across the epoch, s.
    ///
    /// # Panics
    ///
    /// Panics if the epoch has no batches.
    pub fn mean_batch_time(&self) -> f64 {
        assert!(!self.batches.is_empty(), "epoch has no batches");
        self.epoch_time / self.batches.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(node: usize, a: f64, p: f64) -> NodeObservation {
        NodeObservation {
            node,
            local_batch: 8,
            a_time: a,
            p_time: p,
            sync_start: a + 0.1 * p,
            gamma_obs: 0.1,
            t_comm_obs: 0.05,
            t_u_obs: 0.01,
            rel_variance: 4e-4,
        }
    }

    #[test]
    fn max_compute_picks_straggler() {
        let trace = BatchTrace {
            observations: vec![obs(0, 0.1, 0.2), obs(1, 0.3, 0.4)],
            batch_time: 0.75,
            bucket_sync_end: vec![0.7, 0.75],
            faults: Vec::new(),
        };
        assert_eq!(trace.max_compute(), 0.7);
    }

    #[test]
    fn mean_batch_time() {
        let b = BatchTrace { observations: vec![], batch_time: 0.5, bucket_sync_end: vec![], faults: vec![] };
        let e = EpochTrace { batches: vec![b.clone(), b], epoch_time: 1.0 };
        assert_eq!(e.mean_batch_time(), 0.5);
    }

    #[test]
    fn step_timing_sanitizes_non_finite_measurements() {
        let mut o = obs(2, 0.1, 0.2);
        o.t_comm_obs = f64::NAN;
        match o.step_timing(5) {
            Event::StepTiming(t) => {
                assert_eq!(t.step, 5);
                assert_eq!(t.rank, 2);
                assert_eq!(t.b_i, 8);
                assert!((t.t_compute - 0.3).abs() < 1e-12);
                assert_eq!(t.t_comm, 0.0);
                assert!((t.overlap - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
