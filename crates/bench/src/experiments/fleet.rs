//! Fleet scheduling trajectory (the `cannikin-fleet` PR): aggregate
//! goodput, makespan, queueing delay and fairness of the adaptive fleet
//! allocator against the FIFO and static-partition baselines, over
//! seeded synthetic arrival traces — the measurements behind
//! `BENCH_fleet.json`.
//!
//! Everything here is simulated time from seeded traces, so the numbers
//! are deterministic: the `fleetgate` binary can hold the committed
//! baseline to a tight tolerance without flaking on shared CI runners.

use crate::{fmt, row};
use cannikin_fleet::{synthetic_trace, AllocPolicy, FleetController, FleetReport};
use cannikin_telemetry::Json;
use hetsim::catalog::Gpu;
use hetsim::cluster::NodeSpec;

/// Pinned seeds of the two arrival traces in the fleet trajectory.
pub const FLEET_SEEDS: [u64; 2] = [7, 17];

/// Jobs per synthetic trace. Six jobs on eight nodes keeps the pool
/// contended through the middle of each trace — the regime where the
/// policies actually differ (with fewer jobs than half the pool, the
/// static partition's equal slices land near every job's scaling knee
/// by accident and all three policies converge).
const JOBS_PER_TRACE: usize = 6;

/// Mean inter-arrival gap, fleet seconds.
const MEAN_GAP_S: f64 = 30.0;

/// The shared pool: 2×A100 + 2×V100 + 4×RTX6000 (the paper's mixed
/// cluster shape, sized so contention is real but every job fits).
pub fn fleet_pool() -> Vec<NodeSpec> {
    let mut out = Vec::new();
    for (gpu, count) in [(Gpu::A100, 2), (Gpu::V100, 2), (Gpu::Rtx6000, 4)] {
        for i in 0..count {
            out.push(NodeSpec::new(format!("{gpu}-{i}"), gpu));
        }
    }
    out
}

fn run_policy(seed: u64, policy: AllocPolicy) -> FleetReport {
    let trace = synthetic_trace(seed, JOBS_PER_TRACE, MEAN_GAP_S);
    FleetController::new(fleet_pool(), trace, policy)
        .expect("valid fleet")
        .run_to_completion(50_000)
        .expect("stream drains")
}

/// One policy's headline numbers on one trace.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Completion time of the whole stream, fleet seconds.
    pub makespan: f64,
    /// Σ effective epochs × dataset size over makespan, samples/s.
    pub goodput: f64,
    /// Mean queueing delay across the trace's jobs, seconds.
    pub queue_delay: f64,
    /// Jain fairness over weighted service.
    pub fairness: f64,
}

impl PolicyOutcome {
    fn of(report: &FleetReport) -> Self {
        PolicyOutcome {
            makespan: report.makespan,
            goodput: report.aggregate_goodput,
            queue_delay: report.mean_queue_delay,
            fairness: report.fairness,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("makespan_s".into(), Json::num(self.makespan)),
            ("goodput".into(), Json::num(self.goodput)),
            ("queue_delay_s".into(), Json::num(self.queue_delay)),
            ("fairness".into(), Json::num(self.fairness)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let f = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric `{key}`"))
        };
        Ok(PolicyOutcome {
            makespan: f("makespan_s")?,
            goodput: f("goodput")?,
            queue_delay: f("queue_delay_s")?,
            fairness: f("fairness")?,
        })
    }
}

/// All three policies on one seeded trace, plus the gated ratios.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Trace seed.
    pub seed: u64,
    /// The adaptive fleet allocator (the system under test).
    pub cannikin: PolicyOutcome,
    /// Head-of-line FIFO baseline.
    pub fifo: PolicyOutcome,
    /// Fixed-equal-partition baseline.
    pub static_: PolicyOutcome,
}

impl TraceOutcome {
    /// `cannikin.goodput / fifo.goodput` — >1 means Cannikin wins.
    pub fn goodput_vs_fifo(&self) -> f64 {
        self.cannikin.goodput / self.fifo.goodput
    }

    /// `cannikin.goodput / static.goodput`.
    pub fn goodput_vs_static(&self) -> f64 {
        self.cannikin.goodput / self.static_.goodput
    }

    /// `fifo.makespan / cannikin.makespan` — >1 means Cannikin finishes
    /// the stream sooner.
    pub fn makespan_vs_fifo(&self) -> f64 {
        self.fifo.makespan / self.cannikin.makespan
    }

    /// `static.makespan / cannikin.makespan`.
    pub fn makespan_vs_static(&self) -> f64 {
        self.static_.makespan / self.cannikin.makespan
    }
}

/// The full fleet trajectory in structured form — what `fleetgate`
/// serializes into `BENCH_fleet.json`.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// One outcome per pinned trace seed.
    pub traces: Vec<TraceOutcome>,
}

impl FleetBenchReport {
    /// Serialize for `BENCH_fleet.json` (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("cannikin-fleet-v1".into())),
            ("pool_nodes".into(), Json::num(fleet_pool().len() as f64)),
            ("jobs_per_trace".into(), Json::num(JOBS_PER_TRACE as f64)),
            (
                "traces".into(),
                Json::Arr(
                    self.traces
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("seed".into(), Json::num(t.seed as f64)),
                                ("cannikin".into(), t.cannikin.to_json()),
                                ("fifo".into(), t.fifo.to_json()),
                                ("static".into(), t.static_.to_json()),
                                ("goodput_vs_fifo".into(), Json::num(t.goodput_vs_fifo())),
                                ("goodput_vs_static".into(), Json::num(t.goodput_vs_static())),
                                ("makespan_vs_fifo".into(), Json::num(t.makespan_vs_fifo())),
                                ("makespan_vs_static".into(), Json::num(t.makespan_vs_static())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstruct a report from `BENCH_fleet.json` (the `fleetgate`
    /// baseline side). Missing or malformed fields become errors.
    pub fn from_json(json: &Json) -> Result<FleetBenchReport, String> {
        let Some(Json::Arr(traces)) = json.get("traces") else {
            return Err("missing `traces` array".into());
        };
        let traces = traces
            .iter()
            .map(|t| {
                let seed = t
                    .get("seed")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "trace missing `seed`".to_string())? as u64;
                let policy = |key: &str| -> Result<PolicyOutcome, String> {
                    let obj = t.get(key).ok_or_else(|| format!("trace {seed} missing `{key}`"))?;
                    PolicyOutcome::from_json(obj).map_err(|e| format!("trace {seed} `{key}`: {e}"))
                };
                Ok(TraceOutcome {
                    seed,
                    cannikin: policy("cannikin")?,
                    fifo: policy("fifo")?,
                    static_: policy("static")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FleetBenchReport { traces })
    }
}

/// Run the full fleet trajectory: every pinned trace under all three
/// policies. Deterministic — same binary, same numbers.
pub fn fleet_report() -> FleetBenchReport {
    FleetBenchReport {
        traces: FLEET_SEEDS
            .iter()
            .map(|&seed| TraceOutcome {
                seed,
                cannikin: PolicyOutcome::of(&run_policy(seed, AllocPolicy::Cannikin)),
                fifo: PolicyOutcome::of(&run_policy(seed, AllocPolicy::Fifo)),
                static_: PolicyOutcome::of(&run_policy(seed, AllocPolicy::Static)),
            })
            .collect(),
    }
}

/// Rendered fleet trajectory (the `figures fleet` experiment).
pub fn fleet() -> String {
    let report = fleet_report();
    let mut out = String::from(
        "Fleet scheduling — adaptive allocator vs FIFO and static partition\n(8-node mixed pool, 6-job seeded arrival traces)\n\n",
    );
    let widths = [6, 10, 13, 16, 15, 10];
    out += &row(
        &[
            "trace".into(),
            "policy".into(),
            "makespan (s)".into(),
            "goodput (sm/s)".into(),
            "queue delay (s)".into(),
            "fairness".into(),
        ],
        &widths,
    );
    out.push('\n');
    for t in &report.traces {
        for (name, p) in
            [("cannikin", &t.cannikin), ("fifo", &t.fifo), ("static", &t.static_)]
        {
            out += &row(
                &[
                    format!("s{}", t.seed),
                    name.into(),
                    fmt(p.makespan),
                    fmt(p.goodput),
                    fmt(p.queue_delay),
                    fmt(p.fairness),
                ],
                &widths,
            );
            out.push('\n');
        }
        out += &format!(
            "  s{}: goodput {:.2}x fifo / {:.2}x static; makespan {:.2}x fifo / {:.2}x static\n",
            t.seed,
            t.goodput_vs_fifo(),
            t.goodput_vs_static(),
            t.makespan_vs_fifo(),
            t.makespan_vs_static(),
        );
    }
    out += "\n(GNS-driven demand caps stop over-parallelization past each job's\n statistical knee, and epoch-boundary reallocation keeps freed nodes\n busy — FIFO over-feeds the head job while the queue idles, and the\n static partition strands a finished job's slice)\n";
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips() {
        let outcome = |x: f64| PolicyOutcome {
            makespan: 100.0 * x,
            goodput: 2_000.0 * x,
            queue_delay: 3.0 * x,
            fairness: 0.9,
        };
        let report = FleetBenchReport {
            traces: vec![TraceOutcome {
                seed: 11,
                cannikin: outcome(1.0),
                fifo: outcome(1.5),
                static_: outcome(1.2),
            }],
        };
        let text = report.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("valid json");
        let back = FleetBenchReport::from_json(&parsed).expect("complete report");
        assert_eq!(back.traces.len(), 1);
        assert_eq!(back.traces[0].seed, 11);
        assert!((back.traces[0].fifo.makespan - 150.0).abs() < 1e-9);
        assert!((back.traces[0].goodput_vs_fifo() - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn adaptive_beats_both_baselines_on_every_pinned_trace() {
        // The PR's acceptance criterion, held as a test: on both pinned
        // arrival traces Cannikin wins aggregate goodput AND makespan
        // against FIFO and the static partition.
        let report = fleet_report();
        assert_eq!(report.traces.len(), FLEET_SEEDS.len());
        for t in &report.traces {
            assert!(t.goodput_vs_fifo() > 1.0, "s{}: goodput vs fifo {:.3}", t.seed, t.goodput_vs_fifo());
            assert!(t.goodput_vs_static() > 1.0, "s{}: goodput vs static {:.3}", t.seed, t.goodput_vs_static());
            assert!(t.makespan_vs_fifo() > 1.0, "s{}: makespan vs fifo {:.3}", t.seed, t.makespan_vs_fifo());
            assert!(
                t.makespan_vs_static() > 1.0,
                "s{}: makespan vs static {:.3}",
                t.seed,
                t.makespan_vs_static()
            );
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = run_policy(FLEET_SEEDS[0], AllocPolicy::Cannikin);
        let b = run_policy(FLEET_SEEDS[0], AllocPolicy::Cannikin);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.aggregate_goodput.to_bits(), b.aggregate_goodput.to_bits());
    }
}
