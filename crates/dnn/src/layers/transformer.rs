//! A pre-norm transformer encoder block.

use super::{Gelu, Layer, LayerNorm, Linear, MultiHeadSelfAttention, Param};
use crate::tensor::Tensor;

/// Pre-LayerNorm transformer encoder block over `[batch, seq, dim]`:
///
/// ```text
/// h = x + Attention(LN₁(x))
/// y = h + W₂·GELU(W₁·LN₂(h))
/// ```
///
/// The residual additions are differentiated explicitly (the gradient fans
/// into both branches), composing the hand-written backward passes of
/// [`MultiHeadSelfAttention`], [`LayerNorm`], [`Linear`] and [`Gelu`].
#[derive(Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    ff1: Linear,
    gelu: Gelu,
    ff2: Linear,
    dim: usize,
    shape: Option<(usize, usize)>,
}

impl TransformerBlock {
    /// Create a block with an FFN expansion factor of 4 (the BERT shape).
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is a positive multiple of `heads`.
    pub fn new(dim: usize, heads: usize, seed: u64) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadSelfAttention::new(dim, heads, seed),
            ln2: LayerNorm::new(dim),
            ff1: Linear::new(dim, 4 * dim, seed.wrapping_add(10)),
            gelu: Gelu::new(),
            ff2: Linear::new(4 * dim, dim, seed.wrapping_add(11)),
            dim,
            shape: None,
        }
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "transformer input must be [batch, seq, dim]");
        assert_eq!(shape[2], self.dim, "transformer dim mismatch");
        let (batch, seq) = (shape[0], shape[1]);
        self.shape = Some((batch, seq));

        // h = x + attn(ln1(x))
        let flat = x.clone().reshape(&[batch * seq, self.dim]);
        let normed = self.ln1.forward(&flat, train).reshape(&[batch, seq, self.dim]);
        let attn_out = self.attn.forward(&normed, train).reshape(&[batch * seq, self.dim]);
        let h = flat.add(&attn_out);

        // y = h + ff2(gelu(ff1(ln2(h))))
        let normed2 = self.ln2.forward(&h, train);
        let ff = self.ff2.forward(&self.gelu.forward(&self.ff1.forward(&normed2, train), train), train);
        h.add(&ff).reshape(&[batch, seq, self.dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (batch, seq) = self.shape.expect("backward called before forward");
        assert_eq!(grad_out.shape(), &[batch, seq, self.dim], "transformer backward shape mismatch");
        let dy = grad_out.clone().reshape(&[batch * seq, self.dim]);

        // y = h + ffn(ln2(h)): gradient fans into the skip and the FFN.
        let d_ff = self.ff1.backward(&self.gelu.backward(&self.ff2.backward(&dy)));
        let dh = dy.add(&self.ln2.backward(&d_ff));

        // h = x + attn(ln1(x)).
        let d_attn = self.attn.backward(&dh.clone().reshape(&[batch, seq, self.dim]));
        let dx = dh.add(&self.ln1.backward(&d_attn.reshape(&[batch * seq, self.dim])));
        dx.reshape(&[batch, seq, self.dim])
    }

    fn parameters(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        out.extend(self.ln1.parameters());
        out.extend(self.attn.parameters());
        out.extend(self.ln2.parameters());
        out.extend(self.ff1.parameters());
        out.extend(self.ff2.parameters());
        out
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.ln1.parameters_mut());
        out.extend(self.attn.parameters_mut());
        out.extend(self.ln2.parameters_mut());
        out.extend(self.ff1.parameters_mut());
        out.extend(self.ff2.parameters_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_roundtrip() {
        let mut block = TransformerBlock::new(8, 2, 71);
        let x = Tensor::randn(&[2, 5, 8], 72);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8]);
        let gx = block.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn gradient_check_through_both_residuals() {
        let mut block = TransformerBlock::new(4, 2, 73);
        let x = Tensor::randn(&[1, 3, 4], 74);
        let y = block.forward(&x, true);
        let gy = y.scale(2.0); // loss = Σ y²
        let gx = block.backward(&gy);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = block.forward(&xp, true).map(|v| v * v).sum();
            let lm = block.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.08,
                "x[{idx}]: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn parameter_inventory() {
        let block = TransformerBlock::new(8, 2, 75);
        // 2 LayerNorms (2 params each) + attention (8) + 2 linears (2 each).
        assert_eq!(block.parameters().len(), 2 * 2 + 8 + 2 * 2);
        let total: usize = block.parameters().iter().map(|p| p.len()).sum();
        // 4 attn mats (64) + 4 attn biases (8) + ffn 8×32 + 32 + 32×8 + 8 + LNs 4×8.
        assert_eq!(total, 4 * 64 + 4 * 8 + 8 * 32 + 32 + 32 * 8 + 8 + 4 * 8);
    }
}
