//! Fluent builders for the two training engines.
//!
//! [`CannikinTrainerBuilder`] and [`ParallelTrainerBuilder`] are the
//! supported way to construct trainers: every knob has a sensible default,
//! misconfigurations surface as [`CannikinError::InvalidConfig`] from
//! `build()` instead of a panic deep inside a constructor, and the
//! collective transport can be chosen per trainer
//! ([`TransportKind::InProcess`] channels or [`TransportKind::tcp`]
//! sockets).
//!
//! Transport precedence is **builder > env > default**: an explicit
//! [`transport`](CannikinTrainerBuilder::transport) call (or, for the
//! parallel builder, a full [`config`](ParallelTrainerBuilder::config))
//! always wins; otherwise the `CANNIKIN_TRANSPORT` variable is consulted
//! via [`RuntimeOptions::from_env`]; otherwise the in-process backend is
//! used. The gradient codec follows the same ladder through
//! [`codec`](ParallelTrainerBuilder::codec) and `CANNIKIN_CODEC`, ending
//! at the lossless raw-`f32` default. The adaptation policy follows it
//! too: [`policy`](CannikinTrainerBuilder::policy) (or
//! [`policy_boxed`](CannikinTrainerBuilder::policy_boxed) for a custom
//! [`Policy`] implementation) > `CANNIKIN_POLICY` >
//! [`PolicyKind::OptPerf`].
//!
//! ```
//! use cannikin_core::engine::{CannikinTrainer, LinearNoiseGrowth};
//! use hetsim::catalog::Gpu;
//! use hetsim::cluster::{ClusterSpec, NodeSpec};
//! use hetsim::job::JobSpec;
//! use hetsim::Simulator;
//!
//! let cluster = ClusterSpec::new(
//!     "quickstart",
//!     vec![NodeSpec::new("a100", Gpu::A100), NodeSpec::new("v100", Gpu::V100)],
//! );
//! let mut trainer = CannikinTrainer::builder()
//!     .simulator(Simulator::new(cluster, JobSpec::resnet18_cifar10(), 7))
//!     .noise(LinearNoiseGrowth { initial: 300.0, rate: 1.0 })
//!     .dataset_size(10_000)
//!     .batch_range(64, 1024)
//!     .build()
//!     .expect("valid configuration");
//! let record = trainer.run_epoch().expect("epoch runs");
//! assert_eq!(record.total_batch, 64);
//! ```

use super::parallel::{ParallelConfig, ParallelTrainer};
use super::trainer::{CannikinTrainer, TrainerConfig};
use super::NoiseModel;
use crate::error::CannikinError;
use crate::optperf::SolverInput;
use crate::perf::MeasurementAggregation;
use crate::policy::{self, Policy, PolicyKind};
use crate::runtime::RuntimeOptions;

use cannikin_collectives::{Codec, CommFaultPlan, RetryPolicy, TransportKind};
use cannikin_insight::Monitor;
use hetsim::Simulator;
use minidnn::data::ClassificationDataset;
use minidnn::layers::Sequential;
use minidnn::lr::LrScaler;

use std::sync::Arc;

/// Resolve the effective transport: builder choice > `CANNIKIN_TRANSPORT`.
/// Returns `None` when neither is set (the engines then use their own
/// default, which for both is the in-process backend).
fn transport_from_env(builder: Option<TransportKind>) -> Result<Option<TransportKind>, CannikinError> {
    match builder {
        Some(kind) => Ok(Some(kind)),
        None => RuntimeOptions::transport_from_env(),
    }
}

/// Resolve the effective gradient codec: builder choice > `CANNIKIN_CODEC`.
/// Returns `None` when neither is set (the engine then uses the lossless
/// default).
fn codec_from_env(builder: Option<Codec>) -> Result<Option<Codec>, CannikinError> {
    match builder {
        Some(codec) => Ok(Some(codec)),
        None => RuntimeOptions::codec_from_env(),
    }
}

/// Resolve the effective adaptation policy kind: builder choice >
/// `CANNIKIN_POLICY`. Returns `None` when neither is set (the builders
/// then construct the [`PolicyKind::OptPerf`] default).
fn policy_from_env(builder: Option<PolicyKind>) -> Result<Option<PolicyKind>, CannikinError> {
    match builder {
        Some(kind) => Ok(Some(kind)),
        None => RuntimeOptions::policy_from_env(),
    }
}

/// Builder for the simulator-driven [`CannikinTrainer`].
///
/// Required: [`simulator`](Self::simulator). Everything else defaults to
/// the standard workload configuration (50 000-sample dataset, batch range
/// 64–4096, inverse-variance measurement fusion, adaptive total batch,
/// linear noise growth φ₀ = 300, rate 1).
#[derive(Default)]
pub struct CannikinTrainerBuilder {
    sim: Option<Simulator>,
    noise: Option<Box<dyn NoiseModel>>,
    config: Option<TrainerConfig>,
    dataset_size: Option<usize>,
    base_batch: Option<u64>,
    max_batch: Option<u64>,
    aggregation: Option<MeasurementAggregation>,
    adaptive_batch: Option<bool>,
    monitor: Option<Monitor>,
    warm_start: Option<SolverInput>,
    transport: Option<TransportKind>,
    policy_kind: Option<PolicyKind>,
    policy: Option<Box<dyn Policy>>,
}

impl CannikinTrainerBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// The simulated cluster to train on (required).
    #[must_use]
    pub fn simulator(mut self, sim: Simulator) -> Self {
        self.sim = Some(sim);
        self
    }

    /// The gradient-noise evolution model (default: linear growth,
    /// φ₀ = 300, rate 1 per effective epoch).
    #[must_use]
    pub fn noise(mut self, noise: impl NoiseModel + 'static) -> Self {
        self.noise = Some(Box::new(noise));
        self
    }

    /// Like [`noise`](Self::noise), accepting an already-boxed model
    /// (e.g. a `Box<dyn NoiseModel>` chosen at runtime).
    #[must_use]
    pub fn noise_boxed(mut self, noise: Box<dyn NoiseModel>) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Start from a complete [`TrainerConfig`]; the individual setters
    /// below still override its fields.
    #[must_use]
    pub fn config(mut self, config: TrainerConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Samples per (synthetic) dataset epoch.
    #[must_use]
    pub fn dataset_size(mut self, samples: usize) -> Self {
        self.dataset_size = Some(samples);
        self
    }

    /// Initial/reference total batch size B₀.
    #[must_use]
    pub fn base_batch(mut self, base: u64) -> Self {
        self.base_batch = Some(base);
        self
    }

    /// Upper end of the admissible total-batch range.
    #[must_use]
    pub fn max_batch(mut self, max: u64) -> Self {
        self.max_batch = Some(max);
        self
    }

    /// Both ends of the total-batch range at once.
    #[must_use]
    pub fn batch_range(self, base: u64, max: u64) -> Self {
        self.base_batch(base).max_batch(max)
    }

    /// Measurement aggregation for the cluster constants (IVW vs naive).
    #[must_use]
    pub fn aggregation(mut self, aggregation: MeasurementAggregation) -> Self {
        self.aggregation = Some(aggregation);
        self
    }

    /// Whether the total batch size adapts via goodput (`false` pins it to
    /// `base_batch`).
    #[must_use]
    pub fn adaptive_batch(mut self, adaptive: bool) -> Self {
        self.adaptive_batch = Some(adaptive);
        self
    }

    /// Attach an online health [`Monitor`] from the start.
    #[must_use]
    pub fn monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Warm-start from a checkpointed performance model, skipping the
    /// bootstrap epochs.
    #[must_use]
    pub fn warm_start(mut self, checkpoint: SolverInput) -> Self {
        self.warm_start = Some(checkpoint);
        self
    }

    /// Collective transport for the per-epoch cluster-metric exchange
    /// (local batches and per-sample times gathered over a real comm
    /// group, with bytes-on-wire telemetry). When neither this nor
    /// `CANNIKIN_TRANSPORT` is set, no exchange runs — the simulator-driven
    /// trainer has no gradients to move, so the control-plane gather is
    /// opt-in.
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Which built-in adaptation policy plans each epoch (default: builder
    /// > `CANNIKIN_POLICY` > [`PolicyKind::OptPerf`]).
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy_kind = Some(kind);
        self
    }

    /// A custom [`Policy`] implementation; overrides
    /// [`policy`](Self::policy) and `CANNIKIN_POLICY`.
    #[must_use]
    pub fn policy_boxed(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Build the trainer.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the simulator is missing, the
    /// batch range cannot cover the cluster, or `CANNIKIN_TRANSPORT` /
    /// `CANNIKIN_POLICY` holds an unparseable value.
    pub fn build(self) -> Result<CannikinTrainer, CannikinError> {
        let sim = self
            .sim
            .ok_or_else(|| CannikinError::InvalidConfig("CannikinTrainerBuilder needs a simulator".into()))?;
        let mut config = self.config.unwrap_or_else(|| TrainerConfig::new(50_000, 64, 4096));
        if let Some(v) = self.dataset_size {
            config.dataset_size = v;
        }
        if let Some(v) = self.base_batch {
            config.base_batch = v;
        }
        if let Some(v) = self.max_batch {
            config.max_batch = v;
        }
        if let Some(v) = self.aggregation {
            config.aggregation = v;
        }
        if let Some(v) = self.adaptive_batch {
            config.adaptive_batch = v;
        }
        let n = sim.cluster().len() as u64;
        if config.base_batch < n {
            return Err(CannikinError::InvalidConfig(format!(
                "base batch {} cannot cover {n} nodes",
                config.base_batch
            )));
        }
        if config.max_batch < config.base_batch {
            return Err(CannikinError::InvalidConfig(format!(
                "max batch {} is below base batch {}",
                config.max_batch, config.base_batch
            )));
        }
        let noise: Box<dyn NoiseModel> =
            self.noise.unwrap_or_else(|| Box::new(super::LinearNoiseGrowth { initial: 300.0, rate: 1.0 }));
        let transport = transport_from_env(self.transport)?;
        let policy: Box<dyn Policy> = match self.policy {
            Some(p) => p,
            None => {
                let kind = policy_from_env(self.policy_kind)?.unwrap_or_default();
                policy::build_sim_policy(kind, config.base_batch, sim.cluster().len(), config.max_batch)
            }
        };
        let mut trainer = CannikinTrainer::from_parts(sim, noise, config, transport, policy);
        if let Some(checkpoint) = &self.warm_start {
            trainer.warm_start(checkpoint);
        }
        if let Some(monitor) = self.monitor {
            trainer.attach_monitor(monitor);
        }
        Ok(trainer)
    }
}

impl std::fmt::Debug for CannikinTrainerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CannikinTrainerBuilder")
            .field("sim", &self.sim.is_some())
            .field("config", &self.config)
            .field("transport", &self.transport)
            .finish_non_exhaustive()
    }
}

/// Builder for the thread-parallel functional [`ParallelTrainer`].
///
/// Required: [`dataset`](Self::dataset) and [`model`](Self::model).
/// Everything else defaults to [`ParallelConfig::hetero_default`] with
/// B₀ = 32.
#[derive(Default)]
pub struct ParallelTrainerBuilder {
    dataset: Option<ClassificationDataset>,
    factory: Option<Arc<dyn Fn(u64) -> Sequential + Send + Sync>>,
    config: Option<ParallelConfig>,
    slowdowns: Option<Vec<f64>>,
    base_batch: Option<u64>,
    max_batch: Option<u64>,
    adaptive: Option<bool>,
    base_lr: Option<f64>,
    lr_scaler: Option<LrScaler>,
    seed: Option<u64>,
    comm_faults: Option<CommFaultPlan>,
    retry: Option<RetryPolicy>,
    transport: Option<TransportKind>,
    codec: Option<Codec>,
    overlap: Option<bool>,
    monitor: Option<Monitor>,
    policy_kind: Option<PolicyKind>,
    policy: Option<Box<dyn Policy>>,
}

impl ParallelTrainerBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// The classification dataset to train on (required).
    #[must_use]
    pub fn dataset(mut self, dataset: ClassificationDataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// The model factory (required): `factory(seed)` must build identical
    /// architectures for identical seeds.
    #[must_use]
    pub fn model(mut self, factory: impl Fn(u64) -> Sequential + Send + Sync + 'static) -> Self {
        self.factory = Some(Arc::new(factory));
        self
    }

    /// Start from a complete [`ParallelConfig`] (its `transport` field
    /// counts as an explicit builder-level choice); the individual setters
    /// below still override its fields.
    #[must_use]
    pub fn config(mut self, config: ParallelConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Per-node slowdown factors (1.0 = full speed); the length sets the
    /// node count.
    #[must_use]
    pub fn slowdowns(mut self, slowdowns: Vec<f64>) -> Self {
        self.slowdowns = Some(slowdowns);
        self
    }

    /// Reference/initial total batch size B₀.
    #[must_use]
    pub fn base_batch(mut self, base: u64) -> Self {
        self.base_batch = Some(base);
        self
    }

    /// Upper bound of the adaptive batch range.
    #[must_use]
    pub fn max_batch(mut self, max: u64) -> Self {
        self.max_batch = Some(max);
        self
    }

    /// Both ends of the total-batch range at once.
    #[must_use]
    pub fn batch_range(self, base: u64, max: u64) -> Self {
        self.base_batch(base).max_batch(max)
    }

    /// Whether the total batch size adapts via goodput.
    #[must_use]
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Base learning rate at B₀.
    #[must_use]
    pub fn base_lr(mut self, lr: f64) -> Self {
        self.base_lr = Some(lr);
        self
    }

    /// Learning-rate scaling rule for grown batches.
    #[must_use]
    pub fn lr_scaler(mut self, scaler: LrScaler) -> Self {
        self.lr_scaler = Some(scaler);
        self
    }

    /// RNG seed (model init and shuffling).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Inject deterministic gradient-exchange failures; this routes every
    /// rank through the resilient (timeout + retry-with-backoff) path.
    #[must_use]
    pub fn comm_faults(mut self, plan: CommFaultPlan) -> Self {
        self.comm_faults = Some(plan);
        self
    }

    /// Retry policy of the resilient path.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Collective transport for the gradient exchange (default: builder >
    /// `CANNIKIN_TRANSPORT` > in-process channels).
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Gradient compression codec for the exchange (default: builder >
    /// `CANNIKIN_CODEC` > lossless raw `f32`). Lossy codecs run with
    /// persistent per-rank error feedback.
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = Some(codec);
        self
    }

    /// Overlap gradient communication with backward compute (per-layer
    /// buckets reduced while earlier layers still compute; default:
    /// synchronize after the full backward pass).
    #[must_use]
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Attach an online health [`Monitor`] from the start.
    #[must_use]
    pub fn monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Which built-in adaptation policy plans each epoch (default: builder
    /// > `CANNIKIN_POLICY` > [`PolicyKind::OptPerf`]).
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy_kind = Some(kind);
        self
    }

    /// A custom [`Policy`] implementation; overrides
    /// [`policy`](Self::policy) and `CANNIKIN_POLICY`.
    #[must_use]
    pub fn policy_boxed(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Build the trainer.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the dataset or model factory
    /// is missing, the node set is empty, the batch range cannot cover it,
    /// or `CANNIKIN_TRANSPORT` / `CANNIKIN_POLICY` holds an unparseable
    /// value.
    pub fn build(self) -> Result<ParallelTrainer, CannikinError> {
        let dataset = self
            .dataset
            .ok_or_else(|| CannikinError::InvalidConfig("ParallelTrainerBuilder needs a dataset".into()))?;
        let factory = self
            .factory
            .ok_or_else(|| CannikinError::InvalidConfig("ParallelTrainerBuilder needs a model factory".into()))?;
        let explicit_transport = self.transport.or_else(|| self.config.as_ref().map(|c| c.transport.clone()));
        let explicit_codec = self.codec.or_else(|| self.config.as_ref().map(|c| c.codec));
        let mut config = self
            .config
            .unwrap_or_else(|| ParallelConfig::hetero_default(self.base_batch.unwrap_or(32)));
        if let Some(v) = self.slowdowns {
            config.slowdowns = v;
        }
        if let Some(v) = self.base_batch {
            config.base_batch = v;
        }
        if let Some(v) = self.max_batch {
            config.max_batch = v;
        }
        if let Some(v) = self.adaptive {
            config.adaptive = v;
        }
        if let Some(v) = self.base_lr {
            config.base_lr = v;
        }
        if let Some(v) = self.lr_scaler {
            config.lr_scaler = v;
        }
        if let Some(v) = self.seed {
            config.seed = v;
        }
        if let Some(v) = self.comm_faults {
            config.comm_faults = Some(v);
        }
        if let Some(v) = self.retry {
            config.retry = v;
        }
        if let Some(v) = self.overlap {
            config.overlap = v;
        }
        config.transport = transport_from_env(explicit_transport)?.unwrap_or_default();
        config.codec = codec_from_env(explicit_codec)?.unwrap_or_default();
        let n = config.slowdowns.len();
        if n == 0 {
            return Err(CannikinError::InvalidConfig("need at least one node".into()));
        }
        if config.base_batch < n as u64 {
            return Err(CannikinError::InvalidConfig(format!(
                "base batch {} cannot cover {n} nodes",
                config.base_batch
            )));
        }
        if config.max_batch < config.base_batch {
            return Err(CannikinError::InvalidConfig(format!(
                "max batch {} is below base batch {}",
                config.max_batch, config.base_batch
            )));
        }
        let policy: Box<dyn Policy> = match self.policy {
            Some(p) => p,
            None => {
                let kind = policy_from_env(self.policy_kind)?.unwrap_or_default();
                policy::build_measured_policy(kind)
            }
        };
        let mut trainer = ParallelTrainer::from_parts(dataset, factory, config, policy);
        if let Some(monitor) = self.monitor {
            trainer.attach_monitor(monitor);
        }
        Ok(trainer)
    }
}

impl std::fmt::Debug for ParallelTrainerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelTrainerBuilder")
            .field("dataset", &self.dataset.is_some())
            .field("config", &self.config)
            .field("transport", &self.transport)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;
    use minidnn::data::gaussian_blobs;
    use minidnn::models::mlp_classifier;

    fn sim() -> Simulator {
        let cluster = ClusterSpec::new(
            "b",
            vec![NodeSpec::new("a100", Gpu::A100), NodeSpec::new("v100", Gpu::V100)],
        );
        Simulator::new(cluster, JobSpec::resnet18_cifar10(), 3)
    }

    #[test]
    fn missing_simulator_is_a_config_error() {
        let err = CannikinTrainer::builder().build().expect_err("no simulator");
        assert!(matches!(err, CannikinError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("simulator"));
    }

    #[test]
    fn batch_range_is_validated_not_panicked() {
        let err = CannikinTrainer::builder()
            .simulator(sim())
            .base_batch(1)
            .transport(TransportKind::InProcess)
            .build()
            .expect_err("1 < 2 nodes");
        assert!(err.to_string().contains("cannot cover"));
        let err = CannikinTrainer::builder()
            .simulator(sim())
            .batch_range(64, 32)
            .transport(TransportKind::InProcess)
            .build()
            .expect_err("inverted range");
        assert!(err.to_string().contains("below base batch"));
    }

    #[test]
    fn trainer_builder_defaults_train() {
        let mut t = CannikinTrainer::builder()
            .simulator(sim())
            .dataset_size(3_200)
            .batch_range(32, 256)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        let record = t.run_epoch().expect("epoch");
        assert_eq!(record.total_batch, 32);
        assert!(t.comm_bytes() > 0, "in-process metric exchange moves bytes");
    }

    #[test]
    fn parallel_builder_validates_and_trains() {
        let err = ParallelTrainer::builder().build().expect_err("no dataset");
        assert!(err.to_string().contains("dataset"));
        let err = ParallelTrainer::builder()
            .dataset(gaussian_blobs(64, 4, 10, 3))
            .build()
            .expect_err("no model");
        assert!(err.to_string().contains("model factory"));
        let err = ParallelTrainer::builder()
            .dataset(gaussian_blobs(64, 4, 10, 3))
            .model(|seed| mlp_classifier(10, 16, 4, seed))
            .slowdowns(vec![1.0; 40])
            .base_batch(8)
            .transport(TransportKind::InProcess)
            .build()
            .expect_err("8 < 40 nodes");
        assert!(err.to_string().contains("cannot cover"));

        let mut t = ParallelTrainer::builder()
            .dataset(gaussian_blobs(256, 4, 10, 3))
            .model(|seed| mlp_classifier(10, 16, 4, seed))
            .slowdowns(vec![1.0, 1.0])
            .batch_range(32, 64)
            .adaptive(false)
            .seed(9)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        let report = t.run_epoch().expect("epoch");
        assert_eq!(report.local_batches.len(), 2);
        assert!(report.comm_bytes > 0, "gradient exchange moves bytes");
    }

    #[test]
    fn config_then_setters_layering() {
        let mut cfg = ParallelConfig::hetero_default(32);
        cfg.seed = 40;
        let t = ParallelTrainer::builder()
            .dataset(gaussian_blobs(128, 4, 10, 3))
            .model(|seed| mlp_classifier(10, 16, 4, seed))
            .config(cfg)
            .slowdowns(vec![1.0])
            .build()
            .expect("valid config");
        assert_eq!(t.world_size(), 1, "setter overrides the config's node set");
    }

    #[test]
    fn codec_and_overlap_knobs_layer_like_transport() {
        let mut cfg = ParallelConfig::hetero_default(32);
        cfg.codec = Codec::F16;
        cfg.overlap = true;
        let t = ParallelTrainer::builder()
            .dataset(gaussian_blobs(128, 4, 10, 3))
            .model(|seed| mlp_classifier(10, 16, 4, seed))
            .config(cfg)
            .codec(Codec::Bf16)
            .transport(TransportKind::InProcess)
            .build()
            .expect("valid config");
        assert_eq!(t.config().codec, Codec::Bf16, "setter overrides the config's codec");
        assert!(t.config().overlap, "config's overlap flag survives");

        let t = ParallelTrainer::builder()
            .dataset(gaussian_blobs(128, 4, 10, 3))
            .model(|seed| mlp_classifier(10, 16, 4, seed))
            .overlap(true)
            .transport(TransportKind::InProcess)
            .codec(Codec::TopK { permille: 100 })
            .build()
            .expect("valid config");
        assert_eq!(t.config().codec, Codec::TopK { permille: 100 });
        assert!(t.config().overlap, "overlap setter engages without a config");
    }
}
