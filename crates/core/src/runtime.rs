//! Typed runtime options consolidating the `CANNIKIN_*` environment knobs.
//!
//! Instead of each layer calling `std::env::var` ad hoc, [`RuntimeOptions::from_env`]
//! parses every knob once into a typed struct:
//!
//! | Variable             | Meaning                                             |
//! |----------------------|-----------------------------------------------------|
//! | `CANNIKIN_TELEMETRY` | export targets, `format:path[,format:path]`         |
//! | `CANNIKIN_THREADS`   | kernel thread budget for the minidnn matmul kernels |
//! | `CANNIKIN_TRANSPORT` | collective backend: `inprocess`, `tcp`, `tcp:ADDR`  |
//! | `CANNIKIN_CODEC`     | gradient codec: `none`, `bf16`, `f16`, `topk:N`     |
//! | `CANNIKIN_SIMD`      | GEMM kernel policy: `auto`, `scalar`, `avx2`, `off` |
//! | `CANNIKIN_POLICY`    | adaptation policy: `optperf`, `even`, `lbbsp`, `rl` |
//!
//! **Precedence is builder > env > default**: a value set explicitly on a
//! trainer builder always wins; an env variable fills in anything the
//! builder left unset; the compiled-in default (in-process transport, auto
//! thread budget, raw-f32 gradients, auto kernel dispatch, no telemetry
//! export) covers the rest. The engine builders
//! ([`crate::engine::CannikinTrainerBuilder`],
//! [`crate::engine::ParallelTrainerBuilder`]) apply exactly this rule for
//! the transport and codec knobs.
//!
//! `CANNIKIN_SIMD` is consumed directly by the minidnn kernels with a
//! lenient fallback (an unrecognized value means `auto`, because kernel
//! dispatch happens on hot paths with no error channel); parsing it here
//! gives front-ends a strict validation point so typos still surface.

use crate::error::CannikinError;
use crate::policy::PolicyKind;
use cannikin_collectives::{Codec, TransportKind};
use cannikin_telemetry::env::{parse_targets, ExportTarget};
use minidnn::tensor::simd::SimdPolicy;

/// Name of the transport-selection environment variable.
pub const TRANSPORT_ENV: &str = "CANNIKIN_TRANSPORT";

/// Name of the gradient-codec environment variable.
pub const CODEC_ENV: &str = "CANNIKIN_CODEC";

/// Name of the adaptation-policy environment variable.
pub const POLICY_ENV: &str = "CANNIKIN_POLICY";

/// Re-export of the GEMM kernel-policy variable name for one-stop lookup
/// (the kernels themselves read it leniently; see the module docs).
pub const SIMD_ENV: &str = minidnn::tensor::simd::SIMD_ENV;

/// Name of the kernel-thread-budget environment variable (the same one the
/// minidnn kernels honour directly as their default-of-last-resort).
pub const THREADS_ENV: &str = "CANNIKIN_THREADS";

/// Re-export of the telemetry spec variable name for one-stop lookup.
pub const TELEMETRY_ENV: &str = cannikin_telemetry::env::ENV_VAR;

/// Every `CANNIKIN_*` knob, parsed once.
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// Telemetry export destinations from `CANNIKIN_TELEMETRY` (empty when
    /// unset).
    pub telemetry: Vec<ExportTarget>,
    /// Kernel thread budget from `CANNIKIN_THREADS` (`None` = auto).
    pub threads: Option<usize>,
    /// Collective transport from `CANNIKIN_TRANSPORT` (`None` = unset; the
    /// engines then default to [`TransportKind::InProcess`]).
    pub transport: Option<TransportKind>,
    /// Gradient codec from `CANNIKIN_CODEC` (`None` = unset; the engines
    /// then default to the lossless [`Codec::None`]).
    pub codec: Option<Codec>,
    /// GEMM kernel policy from `CANNIKIN_SIMD` (`None` = unset = runtime
    /// auto-detection).
    pub simd: Option<SimdPolicy>,
    /// Adaptation policy from `CANNIKIN_POLICY` (`None` = unset; the
    /// engines then default to [`PolicyKind::OptPerf`]).
    pub policy: Option<PolicyKind>,
}

impl RuntimeOptions {
    /// Parse every knob from the process environment. Unset variables are
    /// simply absent from the result; *set but malformed* values are hard
    /// errors — a typo'd knob silently falling back to a default is how
    /// benchmarks end up measuring the wrong backend.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] naming the offending variable.
    pub fn from_env() -> Result<Self, CannikinError> {
        let mut options = RuntimeOptions::default();
        if let Ok(spec) = std::env::var(TELEMETRY_ENV) {
            options.telemetry = parse_targets(&spec)
                .map_err(|e| CannikinError::InvalidConfig(format!("{TELEMETRY_ENV}: {e}")))?;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                let threads: usize = trimmed.parse().map_err(|_| {
                    CannikinError::InvalidConfig(format!("{THREADS_ENV}: `{raw}` is not a thread count"))
                })?;
                options.threads = Some(threads);
            }
        }
        options.transport = Self::transport_from_env()?;
        options.codec = Self::codec_from_env()?;
        options.policy = Self::policy_from_env()?;
        if let Ok(raw) = std::env::var(SIMD_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                options.simd = Some(
                    trimmed
                        .parse()
                        .map_err(|e| CannikinError::InvalidConfig(format!("{SIMD_ENV}: {e}")))?,
                );
            }
        }
        Ok(options)
    }

    /// Parse only the `CANNIKIN_TRANSPORT` knob (`None` when unset). The
    /// engine builders use this so that an unrelated malformed variable
    /// (say, a typo'd `CANNIKIN_THREADS`, which the kernels handle with
    /// their own fallback) cannot fail a trainer that never reads it.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the variable is set but
    /// unparseable.
    pub fn transport_from_env() -> Result<Option<TransportKind>, CannikinError> {
        match std::env::var(TRANSPORT_ENV) {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .map(Some)
                .map_err(|e| CannikinError::InvalidConfig(format!("{TRANSPORT_ENV}: {e}"))),
            _ => Ok(None),
        }
    }

    /// Parse only the `CANNIKIN_CODEC` knob (`None` when unset), isolated
    /// for the same reason as [`RuntimeOptions::transport_from_env`]: a
    /// malformed unrelated variable must not fail a build that never reads
    /// it.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the variable is set but
    /// unparseable.
    pub fn codec_from_env() -> Result<Option<Codec>, CannikinError> {
        match std::env::var(CODEC_ENV) {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .map(Some)
                .map_err(|e| CannikinError::InvalidConfig(format!("{CODEC_ENV}: {e}"))),
            _ => Ok(None),
        }
    }

    /// Parse only the `CANNIKIN_POLICY` knob (`None` when unset), isolated
    /// for the same reason as [`RuntimeOptions::transport_from_env`]: a
    /// malformed unrelated variable must not fail a build that never reads
    /// it.
    ///
    /// # Errors
    ///
    /// [`CannikinError::InvalidConfig`] when the variable is set but
    /// unparseable.
    pub fn policy_from_env() -> Result<Option<PolicyKind>, CannikinError> {
        match std::env::var(POLICY_ENV) {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .map(Some)
                .map_err(|e| CannikinError::InvalidConfig(format!("{POLICY_ENV}: {e}"))),
            _ => Ok(None),
        }
    }

    /// The transport to use given an optional builder-level override:
    /// builder > env > [`TransportKind::InProcess`].
    pub fn resolve_transport(&self, builder: Option<TransportKind>) -> TransportKind {
        builder.or_else(|| self.transport.clone()).unwrap_or_default()
    }

    /// The gradient codec to use given an optional builder-level override:
    /// builder > env > [`Codec::None`].
    pub fn resolve_codec(&self, builder: Option<Codec>) -> Codec {
        builder.or(self.codec).unwrap_or_default()
    }

    /// The adaptation policy to use given an optional builder-level
    /// override: builder > env > [`PolicyKind::OptPerf`].
    pub fn resolve_policy(&self, builder: Option<PolicyKind>) -> PolicyKind {
        builder.or(self.policy).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process-global state; they run under one lock so
    // parallel test threads never observe each other's variables.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_env<T>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> T) -> T {
        let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let saved: Vec<(String, Option<String>)> =
            vars.iter().map(|(k, _)| ((*k).to_string(), std::env::var(*k).ok())).collect();
        for (k, v) in vars {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        let out = f();
        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(&k, v),
                None => std::env::remove_var(&k),
            }
        }
        out
    }

    #[test]
    fn unset_environment_yields_defaults() {
        let options = with_env(
            &[
                (TELEMETRY_ENV, None),
                (THREADS_ENV, None),
                (TRANSPORT_ENV, None),
                (CODEC_ENV, None),
                (SIMD_ENV, None),
                (POLICY_ENV, None),
            ],
            RuntimeOptions::from_env,
        )
        .expect("empty env parses");
        assert!(options.telemetry.is_empty());
        assert_eq!(options.threads, None);
        assert_eq!(options.transport, None);
        assert_eq!(options.codec, None);
        assert_eq!(options.simd, None);
        assert_eq!(options.policy, None);
        assert_eq!(options.resolve_transport(None), TransportKind::InProcess);
        assert_eq!(options.resolve_codec(None), Codec::None);
        assert_eq!(options.resolve_policy(None), PolicyKind::OptPerf);
    }

    #[test]
    fn set_knobs_parse_into_typed_values() {
        let options = with_env(
            &[
                (TELEMETRY_ENV, Some("jsonl:/tmp/run.jsonl")),
                (THREADS_ENV, Some("4")),
                (TRANSPORT_ENV, Some("tcp:127.0.0.1:5000")),
                (CODEC_ENV, Some("topk:125")),
                (SIMD_ENV, Some("scalar")),
                (POLICY_ENV, Some("rl")),
            ],
            RuntimeOptions::from_env,
        )
        .expect("valid env parses");
        assert_eq!(options.telemetry.len(), 1);
        assert_eq!(options.threads, Some(4));
        assert_eq!(
            options.transport,
            Some(TransportKind::Tcp { rendezvous: "127.0.0.1:5000".to_string() })
        );
        assert_eq!(options.codec, Some(Codec::TopK { permille: 125 }));
        assert_eq!(options.simd, Some(SimdPolicy::Scalar));
        assert_eq!(options.policy, Some(PolicyKind::Rl));
    }

    #[test]
    fn malformed_knobs_are_hard_errors() {
        for (var, value) in [
            (TRANSPORT_ENV, "carrier-pigeon"),
            (THREADS_ENV, "many"),
            (TELEMETRY_ENV, "csv:/tmp/x"),
            (CODEC_ENV, "int3"),
            (CODEC_ENV, "topk:0"),
            (SIMD_ENV, "avx1024"),
            (POLICY_ENV, "alphago"),
        ] {
            let err = with_env(
                &[
                    (TELEMETRY_ENV, (var == TELEMETRY_ENV).then_some(value)),
                    (THREADS_ENV, (var == THREADS_ENV).then_some(value)),
                    (TRANSPORT_ENV, (var == TRANSPORT_ENV).then_some(value)),
                    (CODEC_ENV, (var == CODEC_ENV).then_some(value)),
                    (SIMD_ENV, (var == SIMD_ENV).then_some(value)),
                    (POLICY_ENV, (var == POLICY_ENV).then_some(value)),
                ],
                RuntimeOptions::from_env,
            )
            .expect_err("malformed value must not be ignored");
            assert!(err.to_string().contains(var), "{err} should name {var}");
        }
    }

    #[test]
    fn codec_parse_ignores_unrelated_knobs() {
        let codec = with_env(
            &[(TRANSPORT_ENV, Some("carrier-pigeon")), (CODEC_ENV, Some("bf16"))],
            RuntimeOptions::codec_from_env,
        )
        .expect("unrelated knob must not fail the codec parse");
        assert_eq!(codec, Some(Codec::Bf16));
    }

    #[test]
    fn transport_parse_ignores_unrelated_knobs() {
        // A typo'd CANNIKIN_THREADS must not fail a trainer build that only
        // consults the transport variable (the kernels have their own
        // lenient fallback for the thread budget).
        let transport = with_env(
            &[(THREADS_ENV, Some("garbage")), (TRANSPORT_ENV, Some("tcp"))],
            RuntimeOptions::transport_from_env,
        )
        .expect("unrelated knob must not fail the transport parse");
        assert_eq!(transport, Some(TransportKind::tcp()));
    }

    #[test]
    fn policy_parse_ignores_unrelated_knobs_and_lists_alternatives() {
        let policy = with_env(
            &[(TRANSPORT_ENV, Some("carrier-pigeon")), (POLICY_ENV, Some("lbbsp"))],
            RuntimeOptions::policy_from_env,
        )
        .expect("unrelated knob must not fail the policy parse");
        assert_eq!(policy, Some(PolicyKind::LbBsp));

        // Mirror of the TransportKind contract: a bad value names the
        // variable and the error lists every valid alternative.
        let err = with_env(&[(POLICY_ENV, Some("alphago"))], RuntimeOptions::policy_from_env)
            .expect_err("malformed policy is a hard error");
        let msg = err.to_string();
        assert!(msg.contains(POLICY_ENV), "{msg} should name {POLICY_ENV}");
        for alt in ["optperf", "even", "lbbsp", "rl"] {
            assert!(msg.contains(alt), "{msg} should list `{alt}`");
        }
    }

    #[test]
    fn builder_overrides_env_overrides_default() {
        let from_env = RuntimeOptions {
            transport: Some(TransportKind::tcp()),
            ..RuntimeOptions::default()
        };
        // Builder wins.
        assert_eq!(from_env.resolve_transport(Some(TransportKind::InProcess)), TransportKind::InProcess);
        // Env fills in.
        assert_eq!(from_env.resolve_transport(None), TransportKind::tcp());
        // Default covers the rest.
        assert_eq!(RuntimeOptions::default().resolve_transport(None), TransportKind::InProcess);

        // The codec knob follows the same ladder.
        let from_env = RuntimeOptions { codec: Some(Codec::F16), ..RuntimeOptions::default() };
        assert_eq!(from_env.resolve_codec(Some(Codec::Bf16)), Codec::Bf16);
        assert_eq!(from_env.resolve_codec(None), Codec::F16);
        assert_eq!(RuntimeOptions::default().resolve_codec(None), Codec::None);

        // And so does the policy knob.
        let from_env = RuntimeOptions { policy: Some(PolicyKind::Even), ..RuntimeOptions::default() };
        assert_eq!(from_env.resolve_policy(Some(PolicyKind::Rl)), PolicyKind::Rl);
        assert_eq!(from_env.resolve_policy(None), PolicyKind::Even);
        assert_eq!(RuntimeOptions::default().resolve_policy(None), PolicyKind::OptPerf);
    }
}
