//! Multi-head self-attention (the transformer/BERT building block).

use super::{Layer, Param};
use crate::tensor::{gemm_at_b, matmul, matmul_a_bt, matmul_at_b, Tensor};

/// Multi-head self-attention over `[batch, seq, dim]` inputs.
///
/// `Y = concat_h( softmax(Q_h K_hᵀ / √d_h) V_h ) W_o`, with `Q/K/V`
/// produced by learned projections of the input. The backward pass is
/// written out explicitly (including the softmax Jacobian), making this
/// the heaviest hand-differentiated layer in `minidnn` — and the one that
/// lets the BERT/SQuAD workload run on real gradients.
#[derive(Debug)]
pub struct MultiHeadSelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    bq: Param,
    bk: Param,
    bv: Param,
    bo: Param,
    heads: usize,
    dim: usize,
    cache: Option<AttnCache>,
    concat: Option<Tensor>,
}

#[derive(Debug)]
struct AttnCache {
    x: Tensor, // [batch*seq, dim]
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per (batch, head): softmaxed attention matrix [seq, seq].
    attn: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl MultiHeadSelfAttention {
    /// Create an attention layer with `heads` heads over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is a positive multiple of `heads`.
    pub fn new(dim: usize, heads: usize, seed: u64) -> Self {
        assert!(heads > 0 && dim > 0 && dim.is_multiple_of(heads), "dim must be a positive multiple of heads");
        let w = |s: u64| Tensor::xavier(&[dim, dim], dim, dim, s);
        MultiHeadSelfAttention {
            wq: Param::new(w(seed), "attn.wq"),
            wk: Param::new(w(seed.wrapping_add(1)), "attn.wk"),
            wv: Param::new(w(seed.wrapping_add(2)), "attn.wv"),
            wo: Param::new(w(seed.wrapping_add(3)), "attn.wo"),
            bq: Param::new(Tensor::zeros(&[dim]), "attn.bq"),
            bk: Param::new(Tensor::zeros(&[dim]), "attn.bk"),
            bv: Param::new(Tensor::zeros(&[dim]), "attn.bv"),
            bo: Param::new(Tensor::zeros(&[dim]), "attn.bo"),
            heads,
            dim,
            cache: None,
            concat: None,
        }
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Slice head `h` of a `[seq, dim]` matrix into `[seq, head_dim]`.
    fn head(&self, m: &Tensor, h: usize) -> Tensor {
        let (seq, dh) = (m.rows(), self.head_dim());
        let mut out = Vec::with_capacity(seq * dh);
        for r in 0..seq {
            let base = r * self.dim + h * dh;
            out.extend_from_slice(&m.data()[base..base + dh]);
        }
        Tensor::from_vec(out, &[seq, dh]).expect("head slice")
    }

    /// Accumulate a `[seq, head_dim]` gradient back into head `h` of a
    /// `[seq, dim]` matrix.
    fn scatter_head(&self, target: &mut Tensor, grad: &Tensor, h: usize) {
        let (seq, dh) = (grad.rows(), self.head_dim());
        for r in 0..seq {
            let base = r * self.dim + h * dh;
            for c in 0..dh {
                target.data_mut()[base + c] += grad.data()[r * dh + c];
            }
        }
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention input must be [batch, seq, dim], got {shape:?}");
        assert_eq!(shape[2], self.dim, "attention dim mismatch");
        let (batch, seq) = (shape[0], shape[1]);
        let flat = x.clone().reshape(&[batch * seq, self.dim]);
        let q = matmul(&flat, &self.wq.value).add_row_broadcast(&self.bq.value);
        let k = matmul(&flat, &self.wk.value).add_row_broadcast(&self.bk.value);
        let v = matmul(&flat, &self.wv.value).add_row_broadcast(&self.bv.value);

        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Tensor::zeros(&[batch * seq, self.dim]);
        let mut attn_cache = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            let qb = q.slice_rows(b * seq, (b + 1) * seq);
            let kb = k.slice_rows(b * seq, (b + 1) * seq);
            let vb = v.slice_rows(b * seq, (b + 1) * seq);
            for h in 0..self.heads {
                let qh = self.head(&qb, h);
                let kh = self.head(&kb, h);
                let vh = self.head(&vb, h);
                let mut scores = matmul_a_bt(&qh, &kh);
                scores.scale_assign(scale);
                let attn = scores.softmax_rows();
                let oh = matmul(&attn, &vh); // [seq, dh]
                for r in 0..seq {
                    let base = (b * seq + r) * self.dim + h * dh;
                    concat.data_mut()[base..base + dh]
                        .copy_from_slice(&oh.data()[r * dh..(r + 1) * dh]);
                }
                attn_cache.push(attn);
            }
        }
        let out = matmul(&concat, &self.wo.value).add_row_broadcast(&self.bo.value);
        self.cache = Some(AttnCache { x: flat, q, k, v, attn: attn_cache, batch, seq });
        self.concat = Some(concat);
        out.reshape(&[batch, seq, self.dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward");
        let concat = self.concat.take().expect("forward stores the concat matrix");
        let (batch, seq, dh) = (cache.batch, cache.seq, self.head_dim());
        assert_eq!(grad_out.shape(), &[batch, seq, self.dim], "attention backward shape mismatch");
        let g = grad_out.clone().reshape(&[batch * seq, self.dim]);

        // Output projection (dWo accumulated in place, no temporary).
        gemm_at_b(self.dim, self.dim, batch * seq, concat.data(), g.data(), self.wo.grad.data_mut(), true);
        self.bo.grad.add_assign(&g.sum_rows());
        let d_concat = matmul_a_bt(&g, &self.wo.value); // [batch*seq, dim]

        let scale = 1.0 / (dh as f32).sqrt();
        let mut dq = Tensor::zeros(&[batch * seq, self.dim]);
        let mut dk = Tensor::zeros(&[batch * seq, self.dim]);
        let mut dv = Tensor::zeros(&[batch * seq, self.dim]);
        for b in 0..batch {
            let qb = cache.q.slice_rows(b * seq, (b + 1) * seq);
            let kb = cache.k.slice_rows(b * seq, (b + 1) * seq);
            let vb = cache.v.slice_rows(b * seq, (b + 1) * seq);
            let d_concat_b = d_concat.slice_rows(b * seq, (b + 1) * seq);
            for h in 0..self.heads {
                let attn = &cache.attn[b * self.heads + h];
                let d_oh = self.head(&d_concat_b, h); // [seq, dh]
                let vh = self.head(&vb, h);
                let qh = self.head(&qb, h);
                let kh = self.head(&kb, h);
                // dV_h = Aᵀ dO_h ; dA = dO_h V_hᵀ
                let d_vh = matmul_at_b(attn, &d_oh);
                let d_attn = matmul_a_bt(&d_oh, &vh);
                // Softmax Jacobian per row: ds = A ∘ (dA − rowsum(dA ∘ A)).
                let d_scores = softmax_backward_rows(attn, &d_attn).scale(scale);
                // dQ_h = dS K_h ; dK_h = dSᵀ Q_h
                let d_qh = matmul(&d_scores, &kh);
                let d_kh = matmul_at_b(&d_scores, &qh);
                // Scatter back into the per-batch rows.
                let mut dq_b = Tensor::zeros(&[seq, self.dim]);
                let mut dk_b = Tensor::zeros(&[seq, self.dim]);
                let mut dv_b = Tensor::zeros(&[seq, self.dim]);
                self.scatter_head(&mut dq_b, &d_qh, h);
                self.scatter_head(&mut dk_b, &d_kh, h);
                self.scatter_head(&mut dv_b, &d_vh, h);
                for r in 0..seq {
                    let dst = (b * seq + r) * self.dim;
                    for c in 0..self.dim {
                        dq.data_mut()[dst + c] += dq_b.data()[r * self.dim + c];
                        dk.data_mut()[dst + c] += dk_b.data()[r * self.dim + c];
                        dv.data_mut()[dst + c] += dv_b.data()[r * self.dim + c];
                    }
                }
            }
        }

        // Input projections (accumulated in place).
        gemm_at_b(self.dim, self.dim, batch * seq, cache.x.data(), dq.data(), self.wq.grad.data_mut(), true);
        gemm_at_b(self.dim, self.dim, batch * seq, cache.x.data(), dk.data(), self.wk.grad.data_mut(), true);
        gemm_at_b(self.dim, self.dim, batch * seq, cache.x.data(), dv.data(), self.wv.grad.data_mut(), true);
        self.bq.grad.add_assign(&dq.sum_rows());
        self.bk.grad.add_assign(&dk.sum_rows());
        self.bv.grad.add_assign(&dv.sum_rows());
        let dx = matmul_a_bt(&dq, &self.wq.value)
            .add(&matmul_a_bt(&dk, &self.wk.value))
            .add(&matmul_a_bt(&dv, &self.wv.value));
        dx.reshape(&[batch, seq, self.dim])
    }

    fn parameters(&self) -> Vec<&Param> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo, &self.bq, &self.bk, &self.bv, &self.bo]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.wo,
            &mut self.bq,
            &mut self.bk,
            &mut self.bv,
            &mut self.bo,
        ]
    }
}

/// Row-wise softmax Jacobian-vector product: `A ∘ (dA − rowsum(dA ∘ A))`.
fn softmax_backward_rows(attn: &Tensor, d_attn: &Tensor) -> Tensor {
    let (r, c) = (attn.rows(), attn.cols());
    let mut out = Tensor::zeros(&[r, c]);
    for i in 0..r {
        let a = &attn.data()[i * c..(i + 1) * c];
        let da = &d_attn.data()[i * c..(i + 1) * c];
        let dot: f32 = a.iter().zip(da).map(|(x, y)| x * y).sum();
        for j in 0..c {
            out.data_mut()[i * c + j] = a[j] * (da[j] - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_input() {
        let mut attn = MultiHeadSelfAttention::new(8, 2, 51);
        let x = Tensor::randn(&[2, 5, 8], 52);
        let y = attn.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8]);
        let gx = attn.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn attention_rows_are_distributions() {
        let s = Tensor::randn(&[4, 6], 53).softmax_rows();
        for i in 0..4 {
            let row: f32 = s.data()[i * 6..(i + 1) * 6].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
            assert!(s.data()[i * 6..(i + 1) * 6].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut attn = MultiHeadSelfAttention::new(4, 2, 54);
        let x = Tensor::randn(&[1, 3, 4], 55);
        let y = attn.forward(&x, true);
        let gy = y.scale(2.0); // loss = Σ y²
        let gx = attn.backward(&gy);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = attn.forward(&xp, true).map(|v| v * v).sum();
            let lm = attn.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.03,
                "x[{idx}]: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_check_projections() {
        let mut attn = MultiHeadSelfAttention::new(4, 1, 56);
        let x = Tensor::randn(&[1, 3, 4], 57);
        let y = attn.forward(&x, true);
        attn.backward(&y.scale(2.0));
        let eps = 1e-2f32;
        // Spot-check a few weights in each projection.
        for (name, pick) in [("wq", 0usize), ("wk", 5), ("wv", 9), ("wo", 14)] {
            let analytic = {
                let p = attn.parameters();
                let param = p.iter().find(|p| p.name.ends_with(name)).expect("param");
                param.grad.data()[pick]
            };
            let perturb = |delta: f32, attn: &mut MultiHeadSelfAttention| {
                let mut params = attn.parameters_mut();
                let param = params.iter_mut().find(|p| p.name.ends_with(name)).expect("param");
                param.value.data_mut()[pick] += delta;
            };
            perturb(eps, &mut attn);
            let lp = attn.forward(&x, true).map(|v| v * v).sum();
            perturb(-2.0 * eps, &mut attn);
            let lm = attn.forward(&x, true).map(|v| v * v).sum();
            perturb(eps, &mut attn);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "{name}[{pick}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn heads_partition_the_dim() {
        // With one head vs two heads the parameter count is identical but
        // the attention pattern differs.
        let mut one = MultiHeadSelfAttention::new(8, 1, 58);
        let mut two = MultiHeadSelfAttention::new(8, 2, 58);
        let x = Tensor::randn(&[1, 4, 8], 59);
        let y1 = one.forward(&x, true);
        let y2 = two.forward(&x, true);
        assert_eq!(y1.shape(), y2.shape());
        assert_ne!(y1, y2);
        assert_eq!(
            one.parameters().iter().map(|p| p.len()).sum::<usize>(),
            two.parameters().iter().map(|p| p.len()).sum::<usize>()
        );
    }
}
