//! Residual blocks (the ResNet building block).

use super::batchnorm::BatchNorm2d;
use super::{Conv2d, Layer, Param, Relu};
use crate::tensor::Tensor;

/// A ResNet basic block:
/// `out = relu( bn2(conv2( relu(bn1(conv1(x))) )) + shortcut(x) )`,
/// where the shortcut is the identity when shapes match and a strided 1×1
/// convolution (+ batch norm) otherwise.
#[derive(Debug)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl BasicBlock {
    /// Create a block mapping `in_channels → out_channels` with the given
    /// stride on the first convolution. A projection shortcut is inserted
    /// automatically when the stride or channel count changes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, seed: u64) -> Self {
        let shortcut = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, seed.wrapping_add(2)),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::new(in_channels, out_channels, 3, stride, 1, seed),
            bn1: BatchNorm2d::new(out_channels),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, seed.wrapping_add(1)),
            bn2: BatchNorm2d::new(out_channels),
            shortcut,
            relu_out: Relu::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.relu1.forward(&self.bn1.forward(&self.conv1.forward(x, train), train), train);
        let main = self.bn2.forward(&self.conv2.forward(&h, train), train);
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => bn.forward(&conv.forward(x, train), train),
            None => x.clone(),
        };
        self.relu_out.forward(&main.add(&skip), train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad_out);
        // The sum node fans the gradient into both branches unchanged.
        let g_main = self.conv1.backward(&self.bn1.backward(&self.relu1.backward(
            &self.conv2.backward(&self.bn2.backward(&g)),
        )));
        let g_skip = match &mut self.shortcut {
            Some((conv, bn)) => conv.backward(&bn.backward(&g)),
            None => g,
        };
        g_main.add(&g_skip)
    }

    fn parameters(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        out.extend(self.conv1.parameters());
        out.extend(self.bn1.parameters());
        out.extend(self.conv2.parameters());
        out.extend(self.bn2.parameters());
        if let Some((conv, bn)) = &self.shortcut {
            out.extend(conv.parameters());
            out.extend(bn.parameters());
        }
        out
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.conv1.parameters_mut());
        out.extend(self.bn1.parameters_mut());
        out.extend(self.conv2.parameters_mut());
        out.extend(self.bn2.parameters_mut());
        if let Some((conv, bn)) = &mut self.shortcut {
            out.extend(conv.parameters_mut());
            out.extend(bn.parameters_mut());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_block_preserves_shape() {
        let mut block = BasicBlock::new(8, 8, 1, 41);
        let x = Tensor::randn(&[2, 8, 6, 6], 42);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 6, 6]);
        let gx = block.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn projection_block_downsamples() {
        let mut block = BasicBlock::new(4, 8, 2, 43);
        let x = Tensor::randn(&[2, 4, 8, 8], 44);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        let gx = block.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn gradient_check_through_residual_path() {
        let mut block = BasicBlock::new(2, 2, 1, 45);
        let x = Tensor::randn(&[1, 2, 4, 4], 46);
        let y = block.forward(&x, true);
        let gy = y.scale(2.0); // loss = Σy²
        let gx = block.backward(&gy);
        let eps = 1e-2f32;
        for idx in [0usize, 7, 15, 23, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = block.forward(&xp, true).map(|v| v * v).sum();
            let lm = block.forward(&xm, true).map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.08,
                "x[{idx}]: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn parameter_count_includes_projection() {
        let plain = BasicBlock::new(8, 8, 1, 47);
        let projected = BasicBlock::new(8, 16, 2, 48);
        assert_eq!(plain.parameters().len(), 8); // 2×(conv w+b) + 2×(bn g+b)
        assert_eq!(projected.parameters().len(), 12); // + projection conv/bn
    }
}
