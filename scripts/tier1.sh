#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, and a
# warnings-as-errors clippy pass over the whole workspace.
#
# Usage: scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings as errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo test --test chaos --release -q (all fault schedules)"
cargo test --test chaos --release -q

echo "==> cargo test --test policy --release -q (policy equivalence + determinism)"
cargo test --test policy --release -q

echo "==> cargo test -p cannikin-fleet --release -q (fleet control plane)"
cargo test -p cannikin-fleet --release -q

echo "==> perfgate vs committed BENCH_perf.json (10% ratio tolerance)"
cargo run --release -p cannikin-bench --bin perfgate -- \
    --baseline BENCH_perf.json --out target/BENCH_perf.json

echo "==> fleetgate vs committed BENCH_fleet.json (2% ratio tolerance)"
cargo run --release -p cannikin-bench --bin fleetgate -- \
    --baseline BENCH_fleet.json --out target/BENCH_fleet.json

echo "==> scenariogate vs committed BENCH_scenarios.json (2% tolerance)"
cargo run --release -p cannikin-bench --bin scenariogate -- \
    --baseline BENCH_scenarios.json --out target/BENCH_scenarios.json

echo "tier-1: OK"
