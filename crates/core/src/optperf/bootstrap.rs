//! Model-free batch splits for the first epochs (§4.2, Eq. 8).
//!
//! Learning the linear compute-time model of a node requires observations
//! at two *distinct* local batch sizes, so the first two epochs run
//! without a model: epoch 0 splits evenly (as DDP would), and epoch 1
//! splits by inverse per-sample compute time — Eq. (8) — which both
//! balances load approximately and guarantees the two epochs use different
//! local batch sizes on a heterogeneous cluster.

/// Even split of `total` across `n` nodes, remainder to the first nodes —
/// the PyTorch-DDP assignment and Cannikin's epoch-0 bootstrap.
///
/// # Panics
///
/// Panics if `n == 0` or `total < n`.
///
/// # Examples
///
/// ```
/// assert_eq!(cannikin_core::optperf::even_split(10, 3), vec![4, 3, 3]);
/// ```
pub fn even_split(total: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "need at least one node");
    assert!(total >= n as u64, "total {total} smaller than node count {n}");
    let base = total / n as u64;
    let extra = (total % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

/// Eq. (8): split `total` proportionally to the inverse of each node's
/// observed per-sample compute time.
///
/// `t_samples[i]` is `t_compute^i / b_current^i` from the previous epoch.
/// Every node receives at least one sample; rounding follows the largest
/// remainder.
///
/// # Panics
///
/// Panics if `t_samples` is empty, contains a non-positive time, or
/// `total < t_samples.len()`.
pub fn bootstrap_split(t_samples: &[f64], total: u64) -> Vec<u64> {
    let n = t_samples.len();
    assert!(n > 0, "need at least one node");
    assert!(total >= n as u64, "total {total} smaller than node count {n}");
    assert!(t_samples.iter().all(|&t| t > 0.0), "per-sample times must be positive");
    let inv_sum: f64 = t_samples.iter().map(|t| 1.0 / t).sum();
    let ideal: Vec<f64> = t_samples.iter().map(|t| (1.0 / t) / inv_sum * total as f64).collect();
    round_to_total(&ideal, total)
}

/// A split guaranteed to differ from `prev` at *every* node, used when the
/// Eq. (8) bootstrap degenerates to the previous split (which happens when
/// fixed per-batch costs dominate tiny local batches and all per-sample
/// times look alike). Pairs of adjacent nodes trade one sample, so sums
/// are preserved, every entry stays ≥ 1, and every node has now been
/// observed at two distinct local batch sizes — the precondition for the
/// linear model.
///
/// # Panics
///
/// Panics if `prev` has fewer than two nodes.
pub fn exploration_split(prev: &[u64]) -> Vec<u64> {
    assert!(prev.len() >= 2, "exploration needs at least two nodes");
    let n = prev.len();
    let mut out = prev.to_vec();
    // Trade one sample inside each adjacent pair, in whichever direction
    // keeps both entries ≥ 1.
    let pairs_end = if n.is_multiple_of(2) { n } else { n - 3 };
    let mut i = 0;
    while i + 1 < pairs_end {
        if out[i + 1] >= 2 {
            out[i] += 1;
            out[i + 1] -= 1;
        } else {
            out[i + 1] += 1;
            out[i] -= 1; // out[i] ≥ 2 here: the pair sums to ≥ 3
        }
        i += 2;
    }
    if n % 2 == 1 {
        // Final triple (a, b, c): zero-sum deltas that move all three.
        let (a, b, c) = (n - 3, n - 2, n - 1);
        if out[b] >= 3 {
            out[a] += 1;
            out[b] -= 2;
            out[c] += 1;
        } else if out[a] >= 2 && out[c] >= 2 {
            out[a] -= 1;
            out[b] += 2;
            out[c] -= 1;
        } else if out[a] >= 3 {
            out[a] -= 2;
            out[b] += 1;
            out[c] += 1;
        } else if out[c] >= 3 {
            out[a] += 1;
            out[b] += 1;
            out[c] -= 2;
        } else if out[a] >= 2 {
            // Best effort: one node keeps its size.
            out[a] -= 1;
            out[b] += 1;
        } else if out[c] >= 2 {
            out[c] -= 1;
            out[b] += 1;
        } else if out[b] >= 2 {
            out[b] -= 1;
            out[a] += 1;
        }
    }
    out
}

/// Repair `next` so that *every* node's local batch differs from `prev`
/// (the precondition for fitting each node's linear compute model), while
/// preserving the sum and the one-sample floor.
///
/// Nodes whose size repeats are paired up and trade one sample (both then
/// differ by exactly one). A leftover stuck node trades with a neighbor in
/// a direction that keeps the neighbor distinct too. Best effort in the
/// degenerate all-ones case, where no redistribution exists.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn ensure_distinct_split(prev: &[u64], mut next: Vec<u64>) -> Vec<u64> {
    assert_eq!(prev.len(), next.len(), "split length mismatch");
    let n = prev.len();
    if n < 2 {
        return next;
    }
    let mut stuck: Vec<usize> = (0..n).filter(|&i| next[i] == prev[i]).collect();
    while stuck.len() >= 2 {
        let a = stuck.pop().expect("len >= 2");
        let b = stuck.pop().expect("len >= 2");
        if next[a] >= 2 {
            next[a] -= 1;
            next[b] += 1;
        } else if next[b] >= 2 {
            next[b] -= 1;
            next[a] += 1;
        } else if let Some(j) = (0..n).position(|j| j != a && j != b && next[j] >= 2 && next[j] - 1 != prev[j]) {
            // Both stuck nodes sit at the floor: borrow from a third node.
            next[j] -= 1;
            next[a] += 1;
            stuck.push(b); // retry b against the remaining stuck nodes
        }
        // else: degenerate (everything at the floor) — leave as is.
    }
    if let Some(&i) = stuck.first() {
        // One leftover stuck node: trade with a partner in a direction that
        // keeps the partner distinct from its own previous size.
        let give_to_partner = |next: &[u64], j: usize| next[j] + 1 != prev[j];
        let take_from_partner = |next: &[u64], j: usize| next[j] >= 2 && next[j] - 1 != prev[j];
        if next[i] >= 2 {
            if let Some(j) = (0..n).find(|&j| j != i && give_to_partner(&next, j)) {
                next[i] -= 1;
                next[j] += 1;
                return next;
            }
        }
        if let Some(j) = (0..n).find(|&j| j != i && take_from_partner(&next, j)) {
            next[i] += 1;
            next[j] -= 1;
        }
    }
    next
}

/// Largest-remainder rounding with a floor of one sample per node.
fn round_to_total(ideal: &[f64], total: u64) -> Vec<u64> {
    let n = ideal.len();
    let mut out: Vec<u64> = ideal.iter().map(|&b| (b.floor() as u64).max(1)).collect();
    let mut assigned: u64 = out.iter().sum();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa)
    });
    let mut cursor = 0;
    while assigned < total {
        out[order[cursor % n]] += 1;
        assigned += 1;
        cursor += 1;
    }
    while assigned > total {
        // The floor of 1 can overshoot for tiny totals; shave the largest.
        let i = (0..n).max_by(|&a, &b| out[a].cmp(&out[b])).expect("non-empty");
        if out[i] > 1 {
            out[i] -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_distributes_remainder() {
        assert_eq!(even_split(16, 4), vec![4, 4, 4, 4]);
        assert_eq!(even_split(17, 4), vec![5, 4, 4, 4]);
        assert_eq!(even_split(19, 4), vec![5, 5, 5, 4]);
    }

    #[test]
    fn bootstrap_is_inverse_proportional() {
        // Node 0 twice as fast as node 1 → about twice the batch.
        let split = bootstrap_split(&[1.0, 2.0], 90);
        assert_eq!(split.iter().sum::<u64>(), 90);
        assert_eq!(split, vec![60, 30]);
    }

    #[test]
    fn bootstrap_sums_exactly_for_awkward_totals() {
        let split = bootstrap_split(&[1.0, 1.7, 2.9], 101);
        assert_eq!(split.iter().sum::<u64>(), 101);
        assert!(split[0] > split[1] && split[1] > split[2]);
    }

    #[test]
    fn every_node_gets_at_least_one() {
        // A pathologically slow node must still receive one sample.
        let split = bootstrap_split(&[1.0, 1.0, 1e9], 10);
        assert_eq!(split.iter().sum::<u64>(), 10);
        assert!(split[2] >= 1);
    }

    #[test]
    fn homogeneous_bootstrap_is_even() {
        assert_eq!(bootstrap_split(&[0.5, 0.5, 0.5], 9), vec![3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_time() {
        let _ = bootstrap_split(&[1.0, 0.0], 10);
    }

    #[test]
    fn exploration_changes_every_node_with_slack() {
        for prev in [vec![4u64, 4, 4, 4], vec![4, 4, 4], vec![10, 2, 7, 1, 5], vec![2, 2], vec![1, 5, 1]] {
            let next = exploration_split(&prev);
            assert_eq!(next.iter().sum::<u64>(), prev.iter().sum::<u64>(), "{prev:?} -> {next:?}");
            assert!(next.iter().all(|&b| b >= 1), "{prev:?} -> {next:?}");
            for (i, (&a, &b)) in prev.iter().zip(&next).enumerate() {
                assert_ne!(a, b, "node {i} unchanged: {prev:?} -> {next:?}");
            }
        }
    }

    #[test]
    fn exploration_degenerate_is_best_effort() {
        // [1, 1, 1] cannot change every node; it must at least not panic
        // and must preserve the sum and floor.
        let next = exploration_split(&[1, 1, 1]);
        assert_eq!(next.iter().sum::<u64>(), 3);
        assert!(next.iter().all(|&b| b >= 1));
    }

    #[test]
    fn exploration_sixteen_even_nodes() {
        let prev = vec![4u64; 16];
        let next = exploration_split(&prev);
        assert_eq!(next.iter().sum::<u64>(), 64);
        for (&a, &b) in prev.iter().zip(&next) {
            assert_ne!(a, b);
        }
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;

    #[test]
    fn repairs_partially_stuck_split() {
        let prev = vec![4u64, 4, 4, 4];
        let next = ensure_distinct_split(&prev, vec![5, 4, 4, 3]); // middle two stuck
        assert_eq!(next.iter().sum::<u64>(), 16);
        for (i, (&a, &b)) in prev.iter().zip(&next).enumerate() {
            assert_ne!(a, b, "node {i}: {next:?}");
        }
    }

    #[test]
    fn repairs_single_stuck_node() {
        let prev = vec![4u64, 4, 4];
        let next = ensure_distinct_split(&prev, vec![5, 4, 3]);
        assert_eq!(next.iter().sum::<u64>(), 12);
        for (&a, &b) in prev.iter().zip(&next) {
            assert_ne!(a, b, "{next:?}");
        }
    }

    #[test]
    fn identity_split_fully_repaired() {
        let prev = vec![4u64; 16];
        let next = ensure_distinct_split(&prev, prev.clone());
        assert_eq!(next.iter().sum::<u64>(), 64);
        for (&a, &b) in prev.iter().zip(&next) {
            assert_ne!(a, b, "{next:?}");
        }
    }

    #[test]
    fn stuck_nodes_at_floor() {
        let prev = vec![1u64, 1, 10];
        let next = ensure_distinct_split(&prev, vec![1, 1, 10]);
        assert_eq!(next.iter().sum::<u64>(), 12);
        assert!(next.iter().all(|&b| b >= 1));
        // All three can be fixed: the third node has slack.
        for (&a, &b) in prev.iter().zip(&next) {
            assert_ne!(a, b, "{next:?}");
        }
    }

    #[test]
    fn already_distinct_untouched() {
        let prev = vec![4u64, 4];
        let next = ensure_distinct_split(&prev, vec![6, 2]);
        assert_eq!(next, vec![6, 2]);
    }

    #[test]
    fn degenerate_all_ones_keeps_invariants() {
        let prev = vec![1u64, 1, 1];
        let next = ensure_distinct_split(&prev, vec![1, 1, 1]);
        assert_eq!(next.iter().sum::<u64>(), 3);
        assert!(next.iter().all(|&b| b >= 1));
    }
}
