//! Deterministic synthetic dataset generators.

use super::ClassificationDataset;
use crate::rng;
use crate::tensor::Tensor;

use rand::RngExt;

/// Gaussian-blob classification: `classes` well-separated clusters in
/// `dim`-dimensional space. Stands in for the dense-feature workloads.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn gaussian_blobs(n: usize, classes: usize, dim: usize, seed: u64) -> ClassificationDataset {
    assert!(n > 0 && classes > 0 && dim > 0, "dataset dimensions must be positive");
    let mut r = rng::seeded(seed);
    // Random unit-ish centers scaled apart so classes are learnable.
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| 3.0 * rng::normal(&mut r)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        for d in 0..dim {
            data.push(centers[c][d] + rng::normal(&mut r));
        }
    }
    let features = Tensor::from_vec(data, &[n, dim]).expect("blob shape");
    ClassificationDataset::new(features, labels, classes)
}

/// Image-shaped Gaussian blobs `[n, channels, side, side]` — a CIFAR-like
/// stand-in for the CNN training path.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn gaussian_blob_images(n: usize, classes: usize, channels: usize, side: usize, seed: u64) -> ClassificationDataset {
    let flat = gaussian_blobs(n, classes, channels * side * side, seed);
    let labels = flat.labels().to_vec();
    let (features, _) = flat.batch(&(0..n).collect::<Vec<_>>());
    let features = features.reshape(&[n, channels, side, side]);
    ClassificationDataset::new(features, labels, classes)
}

/// An implicit-feedback interaction dataset for the NeuMF-style
/// recommendation workload: `(user, item, label)` triples generated from
/// latent factors, with one sampled negative per positive.
#[derive(Debug, Clone)]
pub struct InteractionDataset {
    users: Vec<usize>,
    items: Vec<usize>,
    labels: Vec<f32>,
    num_users: usize,
    num_items: usize,
}

impl InteractionDataset {
    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Gather a batch by indices: `(users, items, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Vec<usize>, Vec<usize>, Tensor) {
        let mut u = Vec::with_capacity(indices.len());
        let mut it = Vec::with_capacity(indices.len());
        let mut l = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "interaction index {i} out of range");
            u.push(self.users[i]);
            it.push(self.items[i]);
            l.push(self.labels[i]);
        }
        (u, it, Tensor::from_slice(&l))
    }
}

/// Generate a two-tower interaction dataset: users and items get latent
/// vectors; a positive interaction is sampled where the dot product is
/// high, and each positive is paired with a random negative.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn two_tower_interactions(num_users: usize, num_items: usize, positives: usize, seed: u64) -> InteractionDataset {
    assert!(num_users > 0 && num_items > 0 && positives > 0, "dataset dimensions must be positive");
    let dim = 8;
    let mut r = rng::seeded(seed);
    let uf: Vec<Vec<f32>> = (0..num_users).map(|_| (0..dim).map(|_| rng::normal(&mut r)).collect()).collect();
    let itf: Vec<Vec<f32>> = (0..num_items).map(|_| (0..dim).map(|_| rng::normal(&mut r)).collect()).collect();
    let mut users = Vec::with_capacity(positives * 2);
    let mut items = Vec::with_capacity(positives * 2);
    let mut labels = Vec::with_capacity(positives * 2);
    for _ in 0..positives {
        let u = r.random_range(0..num_users);
        // Pick the best item among a small candidate set: a cheap proxy for
        // "user interacted with something they like".
        let mut best = r.random_range(0..num_items);
        let mut best_score = f32::NEG_INFINITY;
        for _ in 0..4 {
            let cand = r.random_range(0..num_items);
            let score: f32 = uf[u].iter().zip(&itf[cand]).map(|(a, b)| a * b).sum();
            if score > best_score {
                best_score = score;
                best = cand;
            }
        }
        users.push(u);
        items.push(best);
        labels.push(1.0);
        // Random negative.
        users.push(u);
        items.push(r.random_range(0..num_items));
        labels.push(0.0);
    }
    InteractionDataset { users, items, labels, num_users, num_items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_learnable_by_nearest_center() {
        // Estimate class centers from data and check most points are
        // closest to their own center — i.e. the generated task is solvable.
        let dim = 6;
        let classes = 4;
        let ds = gaussian_blobs(400, classes, dim, 5);
        let (x, y) = ds.batch(&(0..400).collect::<Vec<_>>());
        let mut centers = vec![vec![0.0f32; dim]; classes];
        let mut counts = vec![0usize; classes];
        for i in 0..400 {
            counts[y[i]] += 1;
            for d in 0..dim {
                centers[y[i]][d] += x.data()[i * dim + d];
            }
        }
        for (c, count) in centers.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *count as f32;
            }
        }
        let mut correct = 0;
        for i in 0..400 {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, c) in centers.iter().enumerate() {
                let d: f32 = (0..dim).map(|d| (x.data()[i * dim + d] - c[d]).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best == y[i] {
                correct += 1;
            }
        }
        assert!(correct > 360, "only {correct}/400 nearest-center correct");
    }

    #[test]
    fn blob_images_have_image_shape() {
        let ds = gaussian_blob_images(10, 2, 3, 8, 6);
        assert_eq!(ds.sample_shape(), &[3, 8, 8]);
        let (x, _) = ds.batch(&[0, 1]);
        assert_eq!(x.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn interactions_are_balanced() {
        let ds = two_tower_interactions(50, 80, 200, 7);
        assert_eq!(ds.len(), 400);
        let (_, _, labels) = ds.batch(&(0..ds.len()).collect::<Vec<_>>());
        let positives = labels.data().iter().filter(|&&l| l == 1.0).count();
        assert_eq!(positives, 200);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gaussian_blobs(30, 3, 5, 9);
        let b = gaussian_blobs(30, 3, 5, 9);
        assert_eq!(a.batch(&[3]).0, b.batch(&[3]).0);
    }
}

/// A synthetic token-sequence classification dataset (the SQuAD/BERT
/// stand-in): each class draws tokens preferentially from its own
/// "signature" vocabulary slice, so the label is recoverable from token
/// statistics — and a small transformer learns it quickly.
#[derive(Debug, Clone)]
pub struct SequenceDataset {
    sequences: Vec<Vec<usize>>,
    labels: Vec<usize>,
    vocab: usize,
    classes: usize,
}

impl SequenceDataset {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Sequence length (uniform across the dataset).
    pub fn seq_len(&self) -> usize {
        self.sequences.first().map_or(0, Vec::len)
    }

    /// Gather a batch by indices: `(sequences, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>) {
        let seqs = indices.iter().map(|&i| self.sequences[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (seqs, labels)
    }
}

/// Generate class-conditional token sequences.
///
/// # Panics
///
/// Panics if any argument is zero or `vocab < 2 * classes`.
pub fn token_sequences(n: usize, vocab: usize, seq_len: usize, classes: usize, seed: u64) -> SequenceDataset {
    assert!(n > 0 && vocab > 0 && seq_len > 0 && classes > 0, "dataset dimensions must be positive");
    assert!(vocab >= 2 * classes, "vocabulary too small for {classes} class signatures");
    let mut r = rng::seeded(seed);
    let signature_width = vocab / (2 * classes);
    let mut sequences = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let sig_base = class * signature_width;
        let seq: Vec<usize> = (0..seq_len)
            .map(|_| {
                if r.random::<f64>() < 0.5 {
                    // Signature token for this class.
                    sig_base + r.random_range(0..signature_width)
                } else {
                    // Background token from the shared upper half.
                    vocab / 2 + r.random_range(0..vocab / 2)
                }
            })
            .collect();
        sequences.push(seq);
        labels.push(class);
    }
    SequenceDataset { sequences, labels, vocab, classes }
}

#[cfg(test)]
mod sequence_tests {
    use super::*;

    #[test]
    fn sequences_have_uniform_shape() {
        let ds = token_sequences(40, 64, 12, 4, 8);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.seq_len(), 12);
        let (seqs, labels) = ds.batch(&[0, 5, 39]);
        assert_eq!(seqs.len(), 3);
        assert!(seqs.iter().all(|s| s.len() == 12));
        assert!(labels.iter().all(|&l| l < 4));
        assert!(seqs.iter().flatten().all(|&t| t < 64));
    }

    #[test]
    fn signature_tokens_identify_the_class() {
        // Counting signature-slice hits should classify most sequences.
        let classes = 4;
        let ds = token_sequences(200, 64, 16, classes, 9);
        let width = 64 / (2 * classes);
        let (seqs, labels) = ds.batch(&(0..200).collect::<Vec<_>>());
        let mut correct = 0;
        for (seq, &label) in seqs.iter().zip(&labels) {
            let best = (0..classes)
                .max_by_key(|c| seq.iter().filter(|&&t| t >= c * width && t < (c + 1) * width).count())
                .unwrap();
            if best == label {
                correct += 1;
            }
        }
        assert!(correct > 180, "{correct}/200 classified by counting");
    }
}

/// Synthetic "utterances" for the DeepSpeech2 stand-in: each sample is a
/// `[time, features]` frame sequence whose frames oscillate at a
/// class-specific frequency plus noise; features are returned as a dense
/// `[n, time, features]` tensor inside a [`ClassificationDataset`].
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn frame_sequences(n: usize, time: usize, features: usize, classes: usize, seed: u64) -> ClassificationDataset {
    assert!(n > 0 && time > 0 && features > 0 && classes > 0, "dataset dimensions must be positive");
    let mut r = rng::seeded(seed);
    let mut data = Vec::with_capacity(n * time * features);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        // Class-specific temporal frequency and phase jitter.
        let freq = 0.5 + class as f64;
        let phase = rng::normal(&mut r) as f64 * 0.2;
        labels.push(class);
        for t in 0..time {
            let carrier = (freq * t as f64 * 0.7 + phase).sin() as f32;
            for f in 0..features {
                let tone = carrier * ((f % (class + 1)) as f32 + 1.0) / (class + 1) as f32;
                data.push(tone + 0.3 * rng::normal(&mut r));
            }
        }
    }
    let features_t = Tensor::from_vec(data, &[n, time, features]).expect("frame shape");
    ClassificationDataset::new(features_t, labels, classes)
}

#[cfg(test)]
mod frame_tests {
    use super::*;

    #[test]
    fn frames_are_three_dimensional() {
        let ds = frame_sequences(12, 9, 5, 3, 4);
        assert_eq!(ds.sample_shape(), &[9, 5]);
        let (x, y) = ds.batch(&[0, 1, 2]);
        assert_eq!(x.shape(), &[3, 9, 5]);
        assert_eq!(y, vec![0, 1, 2]);
    }

    #[test]
    fn classes_have_distinct_temporal_statistics() {
        // The mean absolute frame-to-frame delta grows with the class
        // frequency, so the label is recoverable from dynamics.
        let time = 24;
        let feats = 4;
        let ds = frame_sequences(60, time, feats, 2, 5);
        let (x, y) = ds.batch(&(0..60).collect::<Vec<_>>());
        let mut deltas = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for i in 0..60 {
            let mut d = 0.0f64;
            for t in 1..time {
                for f in 0..feats {
                    let a = x.data()[(i * time + t) * feats + f];
                    let b = x.data()[(i * time + t - 1) * feats + f];
                    d += f64::from((a - b).abs());
                }
            }
            deltas[y[i]] += d;
            counts[y[i]] += 1;
        }
        let d0 = deltas[0] / counts[0] as f64;
        let d1 = deltas[1] / counts[1] as f64;
        assert!(d1 > d0 * 1.2, "class-1 dynamics {d1} should exceed class-0 {d0}");
    }
}
