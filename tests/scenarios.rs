//! Workspace-level guarantees of the scenario-matrix harness.
//!
//! Two contracts are held here rather than inside `cannikin-bench`:
//! the *determinism* contract — running the full matrix twice under the
//! pinned seed must produce byte-identical JSON, which is what lets CI
//! diff a run against the committed `BENCH_scenarios.json` — and the
//! *soundness* contract — capability filtering never hands a subject a
//! scenario demanding something it did not declare, for arbitrary
//! capability sets, not just the shipped registry.

use cannikin_bench::scenarios::{
    compatible, matrix, scenario_report, Capability, ScenarioKind, ScenarioSpec, SimSystem,
    SubjectKind, SubjectSpec, SCENARIO_SEED,
};
use proptest::prelude::*;

/// The flagship determinism guarantee: the entire matrix — every sim
/// cell, every real-gradient cell, every goodput ratio — serializes to
/// the same bytes on a same-seed re-run. Without this, `scenariogate`
/// would flag phantom regressions on every CI run.
#[test]
fn same_seed_double_run_is_byte_identical() {
    let first = scenario_report();
    let second = scenario_report();
    assert_eq!(first.seed, SCENARIO_SEED);
    assert_eq!(
        first.to_json().to_string_compact(),
        second.to_json().to_string_compact(),
        "scenario matrix must be byte-identical across same-seed runs"
    );
}

/// The double-run above must cover the whole advertised matrix, not a
/// subset: a cell that errors out and is silently dropped would still
/// serialize identically twice.
#[test]
fn report_covers_every_matrix_cell() {
    let report = scenario_report();
    let cells = matrix();
    assert_eq!(report.cells.len(), cells.len());
    for ((scenario, subject), cell) in cells.iter().zip(&report.cells) {
        assert_eq!(cell.scenario, scenario.name);
        assert_eq!(cell.subject, subject.name);
        assert!(!cell.metrics.is_empty(), "{}/{} produced no metrics", cell.scenario, cell.subject);
    }
}

fn masked(mask: &[bool]) -> Vec<Capability> {
    Capability::all().into_iter().zip(mask).filter(|(_, on)| **on).map(|(cap, _)| cap).collect()
}

fn synthetic_scenario(requires: Vec<Capability>) -> ScenarioSpec {
    ScenarioSpec {
        name: "synthetic-scenario",
        description: "property-test fixture",
        requires,
        kind: ScenarioKind::Sim { plan: None, target: 1.0, max_epochs: 1 },
    }
}

fn synthetic_subject(provides: Vec<Capability>) -> SubjectSpec {
    SubjectSpec {
        name: "synthetic-subject",
        description: "property-test fixture",
        provides,
        kind: SubjectKind::Sim(SimSystem::Ddp),
    }
}

proptest! {
    /// Soundness of the one-and-only filter: for *arbitrary* requires /
    /// provides sets, `compatible` is exactly the subset relation — a
    /// subject is admitted iff every required capability is declared, so
    /// no cell can ever demand an undeclared capability.
    #[test]
    fn compatible_is_exactly_the_subset_relation(
        req_mask in proptest::collection::vec(any::<bool>(), 7),
        prov_mask in proptest::collection::vec(any::<bool>(), 7),
    ) {
        let requires = masked(&req_mask);
        let provides = masked(&prov_mask);
        let scenario = synthetic_scenario(requires.clone());
        let subject = synthetic_subject(provides.clone());
        let subset = requires.iter().all(|cap| provides.contains(cap));
        prop_assert_eq!(compatible(&scenario, &subject), subset);
        if compatible(&scenario, &subject) {
            for cap in &scenario.requires {
                prop_assert!(
                    subject.provides.contains(cap),
                    "admitted subject lacks required capability {:?}", cap
                );
            }
        }
    }

    /// Monotonicity: granting a subject *more* capabilities can never
    /// revoke access to a scenario it already qualified for.
    #[test]
    fn adding_capabilities_never_revokes_access(
        req_mask in proptest::collection::vec(any::<bool>(), 7),
        prov_mask in proptest::collection::vec(any::<bool>(), 7),
        extra in 0usize..7,
    ) {
        let scenario = synthetic_scenario(masked(&req_mask));
        let provides = masked(&prov_mask);
        let subject = synthetic_subject(provides.clone());
        if compatible(&scenario, &subject) {
            let mut widened = provides;
            let cap = Capability::all()[extra];
            if !widened.contains(&cap) {
                widened.push(cap);
            }
            prop_assert!(compatible(&scenario, &synthetic_subject(widened)));
        }
    }
}

/// The shipped registry satisfies the same soundness property the
/// proptest establishes for arbitrary sets.
#[test]
fn shipped_matrix_is_sound() {
    for (scenario, subject) in matrix() {
        assert!(
            scenario.requires.iter().all(|cap| subject.provides.contains(cap)),
            "{}/{} pairs without full capability coverage",
            scenario.name,
            subject.name
        );
    }
}
