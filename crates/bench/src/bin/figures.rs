//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures            # list experiment ids
//! figures all        # run everything (paper order)
//! figures fig8       # run one experiment
//! ```

use cannikin_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            eprintln!("usage: figures <experiment-id>|all");
            eprintln!("available experiments:");
            for id in experiments::ids() {
                eprintln!("  {id}");
            }
            std::process::exit(2);
        }
        Some("all") => {
            for (id, output) in experiments::all() {
                println!("==================== {id} ====================");
                println!("{output}");
            }
        }
        Some(id) => match experiments::by_id(id) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment `{id}`; known ids: {}", experiments::ids().join(", "));
                std::process::exit(2);
            }
        },
    }
}
