//! Public-API acceptance tests (ISSUE 5): the `cannikin::prelude` plus
//! the trainer builders must cover everyday use end to end on *both*
//! collective transports, and a weighted all-reduce must produce
//! bitwise-identical results over in-process channels and real TCP
//! sockets.

use cannikin::dnn::data::gaussian_blobs;
use cannikin::dnn::models::mlp_classifier;
use cannikin::prelude::*;
use cannikin::sim::catalog::Gpu;
use std::thread;

fn cluster3() -> ClusterSpec {
    ClusterSpec::new(
        "api",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

fn sim_trainer(transport: TransportKind) -> CannikinTrainer {
    CannikinTrainer::builder()
        .simulator(Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 11))
        .noise(LinearNoiseGrowth { initial: 300.0, rate: 0.5 })
        .dataset_size(6_400)
        .batch_range(64, 512)
        .transport(transport)
        .build()
        .expect("valid configuration")
}

fn parallel_trainer(transport: TransportKind, seed: u64) -> ParallelTrainer {
    ParallelTrainer::builder()
        .dataset(gaussian_blobs(384, 6, 8, 21))
        .model(|seed| mlp_classifier(8, 16, 6, seed))
        .slowdowns(vec![1.0, 1.5, 2.0])
        .batch_range(48, 96)
        .adaptive(false)
        .seed(seed)
        .transport(transport)
        .build()
        .expect("valid configuration")
}

/// Both engines, built entirely from the prelude, train one epoch per
/// backend.
#[test]
fn builders_train_one_epoch_on_every_backend() {
    for kind in [TransportKind::InProcess, TransportKind::tcp()] {
        let record = sim_trainer(kind.clone()).run_epoch().expect("sim epoch");
        assert_eq!(record.local_batches.len(), 3, "{kind}: one share per node");
        assert!(record.epoch_time > 0.0);

        let report = parallel_trainer(kind.clone(), 5).run_epoch().expect("parallel epoch");
        assert_eq!(report.local_batches.iter().sum::<u64>(), report.total_batch);
        assert!(report.comm_bytes > 0, "{kind}: gradient exchange must count wire bytes");
        assert!(report.mean_loss.is_finite());
    }
}

/// Multi-epoch runs over real TCP sockets complete for both engines, and
/// the byte counters keep growing epoch over epoch.
#[test]
fn multi_epoch_tcp_runs_count_bytes() {
    let mut trainer = sim_trainer(TransportKind::tcp());
    let records = trainer.run_epochs(3).expect("tcp sim run");
    assert_eq!(records.len(), 3);
    assert!(trainer.comm_bytes() > 0, "metric exchange must cross the sockets");

    let mut parallel = parallel_trainer(TransportKind::tcp(), 6);
    let mut last_bytes = 0;
    for epoch in 0..3 {
        let report = parallel.run_epoch().expect("tcp parallel epoch");
        assert!(report.comm_bytes > 0, "epoch {epoch} must move gradient bytes");
        last_bytes = report.comm_bytes;
        assert!(report.mean_loss.is_finite());
    }
    assert!(last_bytes > 0);
}

/// Same seed, same data: epoch 0 (which always runs the even split, so
/// timing jitter cannot change the shards) must produce bitwise-identical
/// losses over in-process channels and TCP sockets.
#[test]
fn first_epoch_is_bitwise_identical_across_backends() {
    let a = parallel_trainer(TransportKind::InProcess, 7).run_epoch().expect("in-process epoch");
    let b = parallel_trainer(TransportKind::tcp(), 7).run_epoch().expect("tcp epoch");
    assert_eq!(a.local_batches, b.local_batches, "epoch 0 runs the even split on both");
    assert_eq!(
        a.mean_loss.to_bits(),
        b.mean_loss.to_bits(),
        "losses must agree bitwise: {} vs {}",
        a.mean_loss,
        b.mean_loss
    );
    assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
}

/// A raw weighted all-reduce crosses both backends bit-for-bit — the
/// foundation the engine-level equivalence rests on.
#[test]
fn weighted_all_reduce_matches_bitwise_across_backends() {
    let payload = |rank: usize| -> Vec<f32> {
        (0..37).map(|i| ((i * 13 + rank * 7) as f32).sin() * 0.37).collect()
    };
    let mut per_backend = Vec::new();
    for kind in [TransportKind::InProcess, TransportKind::tcp()] {
        let comms = CommGroup::with_kind(3, &kind, None).expect("group forms");
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                thread::spawn(move || {
                    let mut data = payload(comm.rank());
                    comm.weighted_all_reduce(&mut data, 0.2 + comm.rank() as f32 * 0.3);
                    assert!(comm.bytes_sent() > 0);
                    data
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank").iter().map(|v| v.to_bits()).collect())
            .collect();
        // Every rank of a group agrees with rank 0.
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        per_backend.push(results[0].clone());
    }
    assert_eq!(per_backend[0], per_backend[1], "in-process and tcp must agree bitwise");
}

/// Every adaptation policy is selectable through the builder, and each
/// one plans a full epoch on the simulated engine.
#[test]
fn every_policy_kind_trains_through_the_builder() {
    for kind in [PolicyKind::OptPerf, PolicyKind::Even, PolicyKind::LbBsp, PolicyKind::Rl] {
        let mut trainer = CannikinTrainer::builder()
            .simulator(Simulator::new(cluster3(), JobSpec::resnet18_cifar10(), 11))
            .noise(LinearNoiseGrowth { initial: 300.0, rate: 0.5 })
            .dataset_size(6_400)
            .batch_range(64, 512)
            .policy(kind)
            .build()
            .expect("valid configuration");
        let record = trainer.run_epoch().expect("epoch");
        assert_eq!(record.local_batches.len(), 3, "{kind}: one share per node");
        assert_eq!(record.local_batches.iter().sum::<u64>(), record.total_batch, "{kind}");
    }
}

/// `RuntimeOptions` is reachable from the prelude and resolves the
/// builder-over-environment precedence contract.
#[test]
fn runtime_options_resolve_transport_precedence() {
    let opts = RuntimeOptions::default();
    assert_eq!(opts.resolve_transport(Some(TransportKind::tcp())), TransportKind::tcp());
    assert_eq!(opts.resolve_transport(None), TransportKind::InProcess);
}
