//! The global low-overhead event recorder.
//!
//! Design:
//!
//! * One process-global recorder behind a [`Session`] guard. Telemetry is
//!   **off** by default; the only cost an instrumented call site pays while
//!   off is a single `Relaxed` atomic load (see the `telemetry` criterion
//!   bench).
//! * Emitting threads buffer records in a thread-local `Vec` and flush to a
//!   shared `parking_lot`-guarded sink every `FLUSH_THRESHOLD` events and
//!   on thread exit, so the mutex is touched once per batch rather than per
//!   event.
//! * Sessions are serialized by a global lock and tagged with a generation
//!   counter. A thread-local buffer left over from a previous session is
//!   discarded at the next emit/flush instead of leaking stale events into
//!   the new session.
//! * [`Session::drain`] flushes the calling thread, takes the sink, and
//!   stable-sorts by timestamp — per-thread emission order is preserved
//!   because each thread's timestamps are monotone. Join worker threads
//!   before draining; their buffers flush when they exit.
//! * Registered [`Subscriber`]s tap the sink: every flushed batch is
//!   handed to each subscriber exactly once, in flush order (per-thread
//!   emission order within a batch). Subscribers that want to add records
//!   of their own (e.g. the `cannikin-insight` monitor emitting anomaly
//!   events) must use [`inject`], which bypasses the thread-local buffer —
//!   calling [`emit`] from inside a callback running during a thread-exit
//!   flush would touch a thread-local mid-destruction.

use crate::event::{Event, Record, Span};
use parking_lot::{Mutex, MutexGuard};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Thread-local records buffered before touching the shared sink.
const FLUSH_THRESHOLD: usize = 64;

/// The disabled-path flag. Deliberately a bare static (not inside the
/// `OnceLock`) so `enabled()` is one load with no initialization check.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Session generation; bumped by every [`Session::start`].
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Serializes sessions: at most one live [`Session`] per process.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// Label of the live session (`None` while untagged or between sessions).
/// Set by [`Session::start_tagged`]; the scenario-matrix harness tags each
/// benchmark cell `scenario/subject` so exported streams and drained
/// records can be attributed to the exact matrix cell that produced them.
static SESSION_TAG: Mutex<Option<String>> = Mutex::new(None);

struct Shared {
    start: Instant,
    sink: Mutex<Vec<Record>>,
    subscribers: Mutex<Vec<(u64, Arc<dyn Subscriber>)>>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        start: Instant::now(),
        sink: Mutex::new(Vec::new()),
        subscribers: Mutex::new(Vec::new()),
    })
}

/// A tap on the recorder's sink: receives every flushed batch of records
/// while registered (see [`subscribe`]).
///
/// Batches arrive in flush order; within one batch, records are in the
/// emitting thread's emission order, and every record that reaches the
/// sink is delivered exactly once. Callbacks run on the emitting thread
/// (including during thread exit), so implementations must be cheap,
/// must not block on locks held across `emit` calls, and must use
/// [`inject`] — never [`emit`] — to add records of their own.
pub trait Subscriber: Send + Sync {
    /// Called with each flushed batch before it lands in the sink.
    fn on_records(&self, batch: &[Record]);
}

/// Registers a subscriber; it receives batches until the returned guard
/// drops. Subscribers persist across sessions (registration is a property
/// of the process, not of the current [`Session`]).
pub fn subscribe(subscriber: Arc<dyn Subscriber>) -> SubscriberGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    shared().subscribers.lock().push((id, subscriber));
    SubscriberGuard { id }
}

/// Deregisters its subscriber on drop.
pub struct SubscriberGuard {
    id: u64,
}

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        shared().subscribers.lock().retain(|(id, _)| *id != self.id);
    }
}

/// Hand a flushed batch to every subscriber, then append it to the sink.
/// Notification happens first so the batch needn't be cloned; records a
/// subscriber [`inject`]s land in the sink slightly before their triggers,
/// and the drain's timestamp sort restores causal order.
fn deliver(mut batch: Vec<Record>) {
    let subscribers: Vec<Arc<dyn Subscriber>> =
        shared().subscribers.lock().iter().map(|(_, s)| Arc::clone(s)).collect();
    for subscriber in &subscribers {
        subscriber.on_records(&batch);
    }
    shared().sink.lock().append(&mut batch);
}

struct ThreadBuffer {
    generation: u64,
    node: u32,
    rank: u32,
    records: Vec<Record>,
}

impl ThreadBuffer {
    const fn new() -> ThreadBuffer {
        ThreadBuffer { generation: 0, node: 0, rank: 0, records: Vec::new() }
    }

    /// Take the buffered records if they belong to the live session, or
    /// discard them if the session they were recorded under is gone. The
    /// caller must pass the result to [`deliver`] — splitting take from
    /// delivery lets `emit_slow` release the `RefCell` borrow before any
    /// subscriber callback runs (a callback may legitimately re-enter the
    /// recorder via [`inject`]).
    fn take_live_batch(&mut self) -> Option<Vec<Record>> {
        if self.records.is_empty() {
            return None;
        }
        if self.generation == GENERATION.load(Ordering::Acquire) && ENABLED.load(Ordering::Relaxed) {
            Some(std::mem::take(&mut self.records))
        } else {
            // Stale session: the drain that wanted these already happened.
            self.records.clear();
            None
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        if let Some(batch) = self.take_live_batch() {
            deliver(batch);
        }
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = const { RefCell::new(ThreadBuffer::new()) };
}

/// Whether a session is live. The whole disabled-mode hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one event on the calling thread. A no-op (one atomic load) when
/// no session is live.
#[inline]
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    emit_slow(event);
}

#[cold]
fn emit_slow(event: Event) {
    let sh = shared();
    let ts_ns = sh.start.elapsed().as_nanos() as u64;
    let generation = GENERATION.load(Ordering::Acquire);
    let batch = BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.generation != generation {
            // First emit of a new session on this thread: drop leftovers.
            buf.records.clear();
            buf.generation = generation;
        }
        let (node, rank) = (buf.node, buf.rank);
        buf.records.push(Record { ts_ns, node, rank, event });
        if buf.records.len() >= FLUSH_THRESHOLD { buf.take_live_batch() } else { None }
    });
    // Deliver outside the RefCell borrow: subscriber callbacks may call
    // `inject`, and a re-entrant `emit` from a callback must not panic.
    if let Some(batch) = batch {
        deliver(batch);
    }
}

/// Record one event directly to the sink, bypassing the thread-local
/// buffer. This is the emission path for [`Subscriber`] callbacks: it is
/// safe to call mid-flush and during thread exit (when the thread-local
/// is being destroyed), and the record is visible to `drain` immediately.
/// Injected records do NOT flow back through subscribers, so a subscriber
/// injecting in response to every batch cannot feed back on itself.
/// A no-op when no session is live.
pub fn inject(node: u32, rank: u32, event: Event) {
    if !enabled() {
        return;
    }
    let sh = shared();
    let ts_ns = sh.start.elapsed().as_nanos() as u64;
    sh.sink.lock().push(Record { ts_ns, node, rank, event });
}

/// Flush the calling thread's buffered records to subscribers and the
/// sink now, rather than waiting for the `FLUSH_THRESHOLD` or thread
/// exit. Lets a driver thread present a consistent stream to online
/// monitors at a step/epoch boundary.
pub fn flush_thread() {
    let batch = BUFFER.with(|cell| cell.borrow_mut().take_live_batch());
    if let Some(batch) = batch {
        deliver(batch);
    }
}

/// Set the `(node, rank)` identity stamped on this thread's subsequent
/// records (Chrome-trace `pid`/`tid`). Returns a guard restoring the
/// previous identity on drop.
pub fn set_thread_identity(node: u32, rank: u32) -> IdentityGuard {
    BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        let prev = (buf.node, buf.rank);
        buf.node = node;
        buf.rank = rank;
        IdentityGuard { prev }
    })
}

/// Restores the thread identity that was active before
/// [`set_thread_identity`].
pub struct IdentityGuard {
    prev: (u32, u32),
}

impl Drop for IdentityGuard {
    fn drop(&mut self) {
        BUFFER.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.node = self.prev.0;
            buf.rank = self.prev.1;
        });
    }
}

/// Emit a named counter sample.
#[inline]
pub fn counter(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    emit_slow(Event::Counter(crate::event::Counter { name: name.to_string(), value }));
}

/// Open a span: emits `SpanBegin` now and `SpanEnd` when the guard drops.
/// Inert when no session is live at open time.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None };
    }
    emit_slow(Event::SpanBegin(Span { name: name.to_string() }));
    SpanGuard { name: Some(name.to_string()) }
}

/// Closes its span on drop. Spans nest per thread (close in reverse open
/// order), which is what the Chrome-trace `B`/`E` format requires.
pub struct SpanGuard {
    name: Option<String>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            // The end is emitted even if the session closed mid-span; the
            // generation check discards it in that case.
            if enabled() {
                emit_slow(Event::SpanEnd(Span { name }));
            }
        }
    }
}

/// A live recording session. At most one exists per process at a time;
/// [`Session::start`] blocks until the previous one drops. Dropping the
/// session disables recording and discards anything not yet drained.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Session {
    /// Begin recording. Clears the sink, bumps the session generation
    /// (orphaning any stale thread-local buffers), and enables emission.
    pub fn start() -> Session {
        let guard = SESSION_LOCK.lock();
        *SESSION_TAG.lock() = None;
        shared().sink.lock().clear();
        GENERATION.fetch_add(1, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
        Session { _guard: guard }
    }

    /// Begin a *tagged* recording session: like [`Session::start`], but
    /// the session carries a label readable via [`Session::tag`] /
    /// [`session_tag`] until the session drops. The scenario-matrix
    /// harness tags each cell `scenario/subject`, so anything observing
    /// the stream (exporters, subscribers, tests) can attribute records
    /// to the matrix cell that produced them.
    pub fn start_tagged(tag: impl Into<String>) -> Session {
        let session = Session::start();
        *SESSION_TAG.lock() = Some(tag.into());
        session
    }

    /// This session's tag, if it was started with [`Session::start_tagged`].
    pub fn tag(&self) -> Option<String> {
        SESSION_TAG.lock().clone()
    }

    /// Take everything recorded so far, ordered by timestamp (stable, so
    /// per-thread order is preserved). Flushes the calling thread's buffer;
    /// worker threads flush when they exit, so join them first.
    pub fn drain(&self) -> Vec<Record> {
        flush_thread();
        let mut records = std::mem::take(&mut *shared().sink.lock());
        records.sort_by_key(|r| r.ts_ns);
        records
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        // Disabling first makes our own buffer stale: `flush_thread`
        // discards it without notifying subscribers. Then empty the sink
        // so the next session starts clean regardless.
        flush_thread();
        shared().sink.lock().clear();
        *SESSION_TAG.lock() = None;
    }
}

/// The live session's tag, or `None` when no session is live or the
/// session was started untagged. Cheap enough for exporters but not for
/// the per-event hot path (it takes a lock).
pub fn session_tag() -> Option<String> {
    if !enabled() {
        return None;
    }
    SESSION_TAG.lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Counter;

    /// The harness runs tests on parallel threads; an `emit` outside any
    /// session would otherwise land in a sibling test's live session.
    /// Every test here takes this lock first (before `Session::start`, so
    /// lock order is consistent).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn count_event(i: u64) -> Event {
        Event::Counter(Counter { name: "t".to_string(), value: i as f64 })
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _serial = TEST_LOCK.lock();
        emit(count_event(1)); // no session live: must vanish
        let session = Session::start();
        emit(count_event(2));
        let records = session.drain();
        assert_eq!(records.len(), 1, "only the in-session event is kept");
    }

    #[test]
    fn drain_returns_timestamp_sorted_records() {
        let _serial = TEST_LOCK.lock();
        let session = Session::start();
        for i in 0..200 {
            emit(count_event(i));
        }
        let records = session.drain();
        assert_eq!(records.len(), 200);
        assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Same-thread emission order survives the stable sort.
        let values: Vec<f64> = records
            .iter()
            .map(|r| match &r.event {
                Event::Counter(c) => c.value,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(values.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tagged_session_exposes_tag_until_drop() {
        let _serial = TEST_LOCK.lock();
        assert_eq!(session_tag(), None, "no session: no tag");
        let session = Session::start_tagged("spot-preemption/cannikin");
        assert_eq!(session.tag().as_deref(), Some("spot-preemption/cannikin"));
        assert_eq!(session_tag().as_deref(), Some("spot-preemption/cannikin"));
        drop(session);
        assert_eq!(session_tag(), None, "tag cleared with the session");
    }

    #[test]
    fn untagged_start_clears_stale_tag() {
        let _serial = TEST_LOCK.lock();
        drop(Session::start_tagged("old"));
        let session = Session::start();
        assert_eq!(session.tag(), None);
        assert_eq!(session_tag(), None);
        drop(session);
    }

    #[test]
    fn sessions_isolate_their_events() {
        let _serial = TEST_LOCK.lock();
        {
            let first = Session::start();
            emit(count_event(1));
            drop(first); // never drained: events must not leak
        }
        let second = Session::start();
        emit(count_event(2));
        let records = second.drain();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn identity_guard_restores_previous_identity() {
        let _serial = TEST_LOCK.lock();
        let session = Session::start();
        emit(count_event(0));
        {
            let _id = set_thread_identity(3, 7);
            emit(count_event(1));
        }
        emit(count_event(2));
        let records = session.drain();
        assert_eq!((records[0].node, records[0].rank), (0, 0));
        assert_eq!((records[1].node, records[1].rank), (3, 7));
        assert_eq!((records[2].node, records[2].rank), (0, 0));
    }

    #[test]
    fn spans_pair_up_per_thread() {
        let _serial = TEST_LOCK.lock();
        let session = Session::start();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let records = session.drain();
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["span_begin", "span_begin", "span_end", "span_end"]);
        match (&records[1].event, &records[2].event) {
            (Event::SpanBegin(b), Event::SpanEnd(e)) => {
                assert_eq!(b.name, "inner");
                assert_eq!(e.name, "inner");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_emitters_flush_on_exit_and_keep_per_thread_order() {
        let _serial = TEST_LOCK.lock();
        let session = Session::start();
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                std::thread::spawn(move || {
                    let _id = set_thread_identity(t, t);
                    for i in 0..500 {
                        emit(count_event(u64::from(t) * 1_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let records = session.drain();
        assert_eq!(records.len(), 8 * 500);
        assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Within each emitting thread, values must appear in emission order.
        for t in 0..8u32 {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.rank == t)
                .map(|r| match &r.event {
                    Event::Counter(c) => c.value,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(values.len(), 500);
            assert!(values.windows(2).all(|w| w[0] < w[1]), "thread {t} out of order");
        }
    }

    /// Counts records delivered and remembers batch sizes.
    struct CountingSubscriber {
        seen: Mutex<Vec<Record>>,
    }

    impl Subscriber for CountingSubscriber {
        fn on_records(&self, batch: &[Record]) {
            self.seen.lock().extend_from_slice(batch);
        }
    }

    #[test]
    fn subscriber_sees_every_record_exactly_once() {
        let _serial = TEST_LOCK.lock();
        let sub = Arc::new(CountingSubscriber { seen: Mutex::new(Vec::new()) });
        let _guard = subscribe(sub.clone());
        let session = Session::start();
        for i in 0..(FLUSH_THRESHOLD as u64 * 2 + 7) {
            emit(count_event(i));
        }
        flush_thread();
        let drained = session.drain();
        let seen = sub.seen.lock();
        assert_eq!(seen.len(), drained.len());
        // Same records, same per-thread order.
        for (a, b) in seen.iter().zip(drained.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dropped_guard_stops_delivery() {
        let _serial = TEST_LOCK.lock();
        let sub = Arc::new(CountingSubscriber { seen: Mutex::new(Vec::new()) });
        let guard = subscribe(sub.clone());
        let session = Session::start();
        emit(count_event(0));
        flush_thread();
        drop(guard);
        emit(count_event(1));
        flush_thread();
        assert_eq!(session.drain().len(), 2);
        assert_eq!(sub.seen.lock().len(), 1, "post-unsubscribe batch must not arrive");
    }

    /// Injects a marker record for every batch it sees — the monitor's
    /// anomaly-emission pattern. Must not dead-lock or double-borrow even
    /// though the callback runs inside the emitting thread's flush.
    struct InjectingSubscriber;

    impl Subscriber for InjectingSubscriber {
        fn on_records(&self, batch: &[Record]) {
            if batch.iter().any(|r| !matches!(r.event, Event::SpanBegin(_))) {
                inject(9, 9, Event::SpanBegin(Span { name: "injected".to_string() }));
            }
        }
    }

    #[test]
    fn subscriber_can_inject_records_mid_flush() {
        let _serial = TEST_LOCK.lock();
        let _guard = subscribe(Arc::new(InjectingSubscriber));
        let session = Session::start();
        for i in 0..(FLUSH_THRESHOLD as u64) {
            emit(count_event(i));
        }
        // Threshold flush already fired inside the emit loop; a worker
        // thread exercises the thread-exit flush path too.
        std::thread::spawn(|| emit(count_event(1_000))).join().unwrap();
        let records = session.drain();
        let injected: Vec<&Record> =
            records.iter().filter(|r| matches!(r.event, Event::SpanBegin(_))).collect();
        assert_eq!(injected.len(), 2, "one injection per non-marker batch");
        assert!(injected.iter().all(|r| r.node == 9 && r.rank == 9));
        assert_eq!(records.len(), FLUSH_THRESHOLD + 1 + 2);
    }

    #[test]
    fn inject_without_session_is_dropped() {
        let _serial = TEST_LOCK.lock();
        inject(0, 0, count_event(0));
        let session = Session::start();
        inject(1, 2, count_event(1));
        let records = session.drain();
        assert_eq!(records.len(), 1);
        assert_eq!((records[0].node, records[0].rank), (1, 2));
    }
}
