//! Fleet-wide accounting: per-job outcomes and the aggregate report.

use crate::alloc::AllocPolicy;

/// What happened to one job over the run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name (from the spec).
    pub name: String,
    /// Priority tag (`"production"`, `"standard"`, `"best_effort"`).
    pub priority: &'static str,
    /// Submission time, fleet seconds.
    pub arrival: f64,
    /// First admission time (first node grant), fleet seconds.
    pub admitted_at: f64,
    /// Completion time, fleet seconds.
    pub finished_at: f64,
    /// Statistical progress achieved (effective epochs).
    pub effective_epochs: f64,
    /// Simulated epochs executed.
    pub epochs_run: usize,
    /// Node-seconds of service received (Σ nodes_held × epoch_time).
    pub service: f64,
    /// Times the job lost at least one node to preemption or failure.
    pub preemptions: usize,
}

impl JobOutcome {
    /// Queueing delay: time from submission to first node grant.
    pub fn queue_delay(&self) -> f64 {
        (self.admitted_at - self.arrival).max(0.0)
    }
}

/// Aggregate result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The allocation policy that produced this schedule.
    pub policy: AllocPolicy,
    /// Time at which the last job finished, fleet seconds.
    pub makespan: f64,
    /// Fleet goodput: Σ_j effective_epochs_j × dataset_size_j, divided
    /// by makespan — statistically useful samples per second across the
    /// whole stream (the paper's goodput, summed over tenants).
    pub aggregate_goodput: f64,
    /// Mean queueing delay across jobs, seconds.
    pub mean_queue_delay: f64,
    /// Jain fairness index over weighted service (`service/weight`):
    /// 1.0 = perfectly proportional to priority weights.
    pub fairness: f64,
    /// Fleet allocation decisions taken (epoch boundaries evaluated).
    pub decisions: u64,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`. 1.0 when all `xs` are
/// equal, → 1/n as one value dominates. Empty or all-zero input → 1.0
/// (nothing to be unfair about).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert!((jain_fairness(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[10.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12, "one hog → 1/n: {skew}");
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn queue_delay_clamps_at_zero() {
        let j = JobOutcome {
            name: "x".into(),
            priority: "standard",
            arrival: 5.0,
            admitted_at: 5.0,
            finished_at: 10.0,
            effective_epochs: 1.0,
            epochs_run: 3,
            service: 12.0,
            preemptions: 0,
        };
        assert_eq!(j.queue_delay(), 0.0);
    }
}
