//! Exporters: JSONL for offline analysis, Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto.
//!
//! JSONL is one [`Record`] object per line (see [`Record::to_json`] for the
//! schema) and round-trips through [`parse_jsonl`]. The Chrome trace is a
//! `{"traceEvents": [...]}` object mapping spans to `B`/`E` phase events,
//! counters to `C`, and every other event to an instant (`i`) with its
//! payload in `args`; `pid` is the logical node and `tid` the rank, so
//! Perfetto lays ranks out as separate tracks.

use crate::event::{event_fields, Event, Record};
use crate::json::Json;
use std::io::{self, Write};
use std::path::Path;

/// The JSONL form of a record slice (one compact object per line, with a
/// trailing newline when non-empty).
pub fn jsonl_string(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_jsonl_line());
        out.push('\n');
    }
    out
}

/// Parse a JSONL export back into records. Blank lines are skipped.
///
/// # Errors
///
/// Returns the 1-based line number and cause of the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(Record::from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(records)
}

/// Write the JSONL export to `path`.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_jsonl(path: &Path, records: &[Record]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(jsonl_string(records).as_bytes())?;
    file.flush()
}

/// The Chrome `trace_event` form of a record slice.
pub fn chrome_trace_string(records: &[Record]) -> String {
    let events: Vec<Json> = records.iter().map(chrome_event).collect();
    Json::Obj(vec![("traceEvents".to_string(), Json::Arr(events))]).to_string_compact()
}

/// Write the Chrome trace to `path` (load via `chrome://tracing` or
/// Perfetto's "Open trace file").
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_chrome_trace(path: &Path, records: &[Record]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_string(records).as_bytes())?;
    file.flush()
}

fn chrome_event(record: &Record) -> Json {
    let ts_us = record.ts_ns as f64 / 1_000.0;
    let envelope = |name: &str, ph: &str| {
        vec![
            ("name".to_string(), Json::Str(name.to_string())),
            ("ph".to_string(), Json::Str(ph.to_string())),
            ("ts".to_string(), Json::num(ts_us)),
            ("pid".to_string(), Json::Num(f64::from(record.node))),
            ("tid".to_string(), Json::Num(f64::from(record.rank))),
        ]
    };
    match &record.event {
        Event::SpanBegin(s) => Json::Obj(envelope(&s.name, "B")),
        Event::SpanEnd(s) => Json::Obj(envelope(&s.name, "E")),
        Event::Counter(c) => {
            let mut members = envelope(&c.name, "C");
            members.push(("args".to_string(), Json::Obj(vec![("value".to_string(), Json::num(c.value))])));
            Json::Obj(members)
        }
        other => {
            let mut members = envelope(other.kind(), "i");
            // Thread-scoped instant: renders as a tick on the emitting track.
            members.push(("s".to_string(), Json::Str("t".to_string())));
            members.push(("args".to_string(), Json::Obj(event_fields(other))));
            Json::Obj(members)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Span, SplitDecision, SplitSource};

    fn sample_records() -> Vec<Record> {
        vec![
            Record { ts_ns: 100, node: 0, rank: 0, event: Event::SpanBegin(Span { name: "epoch".into() }) },
            Record {
                ts_ns: 150,
                node: 0,
                rank: 0,
                event: Event::SplitDecision(SplitDecision {
                    total: 64,
                    local: vec![32, 32],
                    predicted_t: Some(0.5),
                    source: SplitSource::Bootstrap,
                }),
            },
            Record { ts_ns: 180, node: 1, rank: 1, event: Event::Counter(Counter { name: "overhead_s".into(), value: 0.01 }) },
            Record { ts_ns: 200, node: 0, rank: 0, event: Event::SpanEnd(Span { name: "epoch".into() }) },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let records = sample_records();
        let text = jsonl_string(&records);
        assert_eq!(text.lines().count(), records.len());
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        let err = parse_jsonl("{\"ts_ns\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let trace = chrome_trace_string(&sample_records());
        let parsed = Json::parse(&trace).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events.iter().map(|e| e.get("ph").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(phases, ["B", "i", "C", "E"]);
        // pid/tid carry node/rank.
        assert_eq!(events[2].get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(events[2].get("tid").and_then(Json::as_u64), Some(1));
        // ts is microseconds.
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(0.1));
        // Instant events carry their payload in args.
        let args = events[1].get("args").expect("args");
        assert_eq!(args.get("total").and_then(Json::as_u64), Some(64));
    }
}
