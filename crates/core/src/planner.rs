//! One-shot planning: "I have this cluster and this job — what should I
//! run?"
//!
//! [`plan`] wraps the full decision pipeline (oracle or learned models →
//! OptPerf sweep → goodput ranking) into a single call that returns a
//! ranked report of batch-size candidates. The engines use the same
//! machinery incrementally; this entry point exists for capacity-planning
//! tools and the examples.

use crate::error::CannikinError;
use crate::gns::{goodput, statistical_efficiency};
use crate::optperf::{even_split, predict_batch_time, OptPerfSolver, Plan, SolverInput};

/// One evaluated batch-size candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateReport {
    /// Total batch size.
    pub total: u64,
    /// The optimal split and its predicted batch time.
    pub plan: Plan,
    /// Predicted time of the even split at the same total, s.
    pub even_time: f64,
    /// Statistical efficiency at this total.
    pub efficiency: f64,
    /// Goodput (reference-batch samples per second).
    pub goodput: f64,
}

impl CandidateReport {
    /// Speedup of the optimal split over the even split.
    pub fn split_speedup(&self) -> f64 {
        self.even_time / self.plan.opt_perf
    }
}

/// The full planning report: candidates ranked by goodput, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Evaluated candidates, best goodput first.
    pub candidates: Vec<CandidateReport>,
}

impl PlanReport {
    /// The goodput-maximizing candidate.
    ///
    /// # Panics
    ///
    /// Never panics: `plan` guarantees at least one candidate.
    pub fn best(&self) -> &CandidateReport {
        &self.candidates[0]
    }
}

/// Evaluate a geometric grid of batch-size candidates for the given
/// models, gradient noise scale `phi` and reference batch `base_batch`.
///
/// # Errors
///
/// Returns an error when no candidate in `[min_batch, max_batch]` is
/// feasible for the cluster.
pub fn plan(
    input: &SolverInput,
    phi: f64,
    base_batch: u64,
    min_batch: u64,
    max_batch: u64,
) -> Result<PlanReport, CannikinError> {
    assert!(min_batch > 0 && min_batch <= max_batch, "invalid batch range");
    let n = input.len();
    let mut solver = OptPerfSolver::new(input.clone());
    let lo = min_batch.max(n as u64) as f64;
    let hi = max_batch as f64;
    let count = (((hi / lo).log10() * 12.0).ceil() as usize).clamp(2, 40);
    let mut candidates = Vec::new();
    for i in 0..=count {
        let total = (lo * (hi / lo).powf(i as f64 / count as f64)).round() as u64;
        if candidates.iter().any(|c: &CandidateReport| c.total == total) {
            continue;
        }
        let Ok(plan) = solver.solve(total) else { continue };
        let even_time = predict_batch_time(input, &even_split(total, n));
        let efficiency = statistical_efficiency(phi, base_batch, total);
        let g = goodput(phi, base_batch, total, plan.opt_perf);
        candidates.push(CandidateReport { total, plan, even_time, efficiency, goodput: g });
    }
    if candidates.is_empty() {
        return Err(CannikinError::InfeasibleBatch {
            total: min_batch,
            reason: "no candidate in the range is feasible for this cluster".into(),
        });
    }
    candidates.sort_by(|a, b| b.goodput.total_cmp(&a.goodput));
    Ok(PlanReport { candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;

    fn input() -> SolverInput {
        let cluster = ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        );
        SolverInput::from_ground_truth(&cluster, &JobSpec::resnet50_imagenet())
    }

    #[test]
    fn report_is_ranked_and_consistent() {
        let report = plan(&input(), 800.0, 100, 100, 2048).expect("feasible");
        assert!(report.candidates.len() >= 5);
        for pair in report.candidates.windows(2) {
            assert!(pair[0].goodput >= pair[1].goodput);
        }
        for c in &report.candidates {
            assert_eq!(c.plan.local_batches.iter().sum::<u64>(), c.total);
            assert!(c.split_speedup() >= 1.0 - 1e-9, "optimal can't lose to even");
            assert!(c.efficiency > 0.0 && c.efficiency <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn best_tracks_noise_scale() {
        let quiet = plan(&input(), 100.0, 100, 100, 4096).expect("feasible");
        let noisy = plan(&input(), 20_000.0, 100, 100, 4096).expect("feasible");
        assert!(noisy.best().total > quiet.best().total);
    }

    #[test]
    fn infeasible_range_is_an_error() {
        let mut tight = input();
        for node in tight.nodes.iter_mut() {
            node.max_batch = Some(2);
        }
        assert!(plan(&tight, 100.0, 100, 100, 4096).is_err());
    }
}
