//! Lossy gradient compression for the collective layer.
//!
//! A [`Codec`] decides how `f32` gradient payloads are serialized onto the
//! transport. [`Codec::None`] keeps the legacy raw little-endian `f32`
//! frames (4 bytes per element, bitwise identical to the pre-codec wire
//! format). The lossy codecs trade precision for bytes:
//!
//! - [`Codec::Bf16`] — bfloat16 truncation with round-to-nearest-even:
//!   2 bytes per element, ~8 bits of mantissa, full `f32` exponent range.
//! - [`Codec::F16`] — IEEE 754 binary16: 2 bytes per element, 11 bits of
//!   effective mantissa, narrow exponent range (saturates to ±∞ beyond
//!   ~65504; gradients this large indicate divergence anyway).
//! - [`Codec::TopK`] — magnitude sparsification: only the `k` largest
//!   entries (by `|v|`, ties broken by lower index) travel, as
//!   `[dense_len: u32][k: u32][k × index: u32][k × value: f32]`.
//!   `k = max(1, ⌈len · permille / 1000⌉)` per frame.
//!
//! ## Wire-format invariants
//!
//! Every codec here is **idempotent**: `encode(decode(encode(x))) ==
//! encode(x)` byte-for-byte. The ring collectives lean on this — after the
//! reduce-scatter phase each rank re-quantizes the chunk it owns
//! ([`Codec::quantize`]) before the all-gather circulates it, so every
//! rank's forwarded copy decodes to the same bits and the group stays
//! replica-consistent even under lossy compression.
//!
//! ## Error feedback
//!
//! Lossy codecs bias the gradient; [`ErrorFeedback`] keeps the classic
//! EF-SGD residual (Karimireddy et al., 2019): the part of the gradient the
//! codec dropped this step is stored and added back into the next step's
//! gradient, so the *accumulated* update converges to the uncompressed
//! trajectory instead of drifting.

use std::fmt;
use std::str::FromStr;

/// Gradient wire codec, selected per communicator group.
///
/// Parsed from the `CANNIKIN_CODEC` environment variable by the engines'
/// runtime options (`none`, `bf16`, `f16`, or `topk:PERMILLE`); builder
/// settings take precedence over the environment, which takes precedence
/// over the [`Codec::None`] default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Raw little-endian `f32` frames — the lossless legacy format.
    #[default]
    None,
    /// bfloat16 (round-to-nearest-even): 2 bytes per element.
    Bf16,
    /// IEEE binary16 (round-to-nearest-even, saturating): 2 bytes/element.
    F16,
    /// Keep only the `permille`/1000 largest-magnitude entries per frame.
    TopK {
        /// Kept fraction in thousandths, clamped to `1..=1000` at parse
        /// time. `100` keeps the top 10%.
        permille: u16,
    },
}

impl Codec {
    /// A short stable label (`none` / `bf16` / `f16` / `topk`), e.g. for
    /// telemetry tags and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Bf16 => "bf16",
            Codec::F16 => "f16",
            Codec::TopK { .. } => "topk",
        }
    }

    /// Whether encoding can lose information (everything but
    /// [`Codec::None`]).
    pub fn is_lossy(&self) -> bool {
        !matches!(self, Codec::None)
    }

    /// Serialize a gradient slice into its wire frame.
    pub fn encode(&self, values: &[f32]) -> Vec<u8> {
        match self {
            Codec::None => {
                let mut out = Vec::with_capacity(values.len() * 4);
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Codec::Bf16 => {
                let mut out = Vec::with_capacity(values.len() * 2);
                for &v in values {
                    out.extend_from_slice(&f32_to_bf16(v).to_le_bytes());
                }
                out
            }
            Codec::F16 => {
                let mut out = Vec::with_capacity(values.len() * 2);
                for &v in values {
                    out.extend_from_slice(&f32_to_f16(v).to_le_bytes());
                }
                out
            }
            Codec::TopK { permille } => encode_topk(values, *permille),
        }
    }

    /// Deserialize a wire frame back into a dense gradient vector.
    ///
    /// # Errors
    ///
    /// A description of the malformation when the frame does not match this
    /// codec's format (wrong length granularity, truncated header,
    /// out-of-range sparse index).
    pub fn decode(&self, frame: &[u8]) -> Result<Vec<f32>, String> {
        match self {
            Codec::None => {
                if !frame.len().is_multiple_of(4) {
                    return Err(format!("frame of {} bytes is not a whole number of f32s", frame.len()));
                }
                Ok(frame.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
            }
            Codec::Bf16 => {
                if !frame.len().is_multiple_of(2) {
                    return Err(format!("frame of {} bytes is not a whole number of bf16s", frame.len()));
                }
                Ok(frame.chunks_exact(2).map(|c| bf16_to_f32(u16::from_le_bytes([c[0], c[1]]))).collect())
            }
            Codec::F16 => {
                if !frame.len().is_multiple_of(2) {
                    return Err(format!("frame of {} bytes is not a whole number of f16s", frame.len()));
                }
                Ok(frame.chunks_exact(2).map(|c| f16_to_f32(u16::from_le_bytes([c[0], c[1]]))).collect())
            }
            Codec::TopK { .. } => decode_topk(frame),
        }
    }

    /// Apply the codec's loss in place without serializing: afterwards
    /// `data` equals `decode(encode(data))`. Used by the ring collectives
    /// to re-quantize a rank's owned chunk before the all-gather phase, and
    /// by the error-feedback path to measure the compression residual.
    pub fn quantize(&self, data: &mut [f32]) {
        match self {
            Codec::None => {}
            Codec::Bf16 => {
                for v in data.iter_mut() {
                    *v = bf16_to_f32(f32_to_bf16(*v));
                }
            }
            Codec::F16 => {
                for v in data.iter_mut() {
                    *v = f16_to_f32(f32_to_f16(*v));
                }
            }
            Codec::TopK { permille } => {
                let keep = topk_indices(data, *permille);
                let mut kept = vec![false; data.len()];
                for &i in &keep {
                    kept[i as usize] = true;
                }
                for (v, k) in data.iter_mut().zip(kept) {
                    if !k {
                        *v = 0.0;
                    }
                }
            }
        }
    }

    /// Encoded size in bytes of a `len`-element frame (exact for every
    /// codec; used by byte-budget estimates in the bench harness).
    pub fn frame_bytes(&self, len: usize) -> usize {
        match self {
            Codec::None => len * 4,
            Codec::Bf16 | Codec::F16 => len * 2,
            Codec::TopK { permille } => 8 + topk_count(len, *permille) * 8,
        }
    }
}

/// Error from parsing a [`Codec`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCodecError {
    value: String,
}

impl fmt::Display for ParseCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown codec `{}` (expected `none`, `bf16`, `f16` or `topk:PERMILLE` with PERMILLE in 1..=1000)",
            self.value
        )
    }
}

impl std::error::Error for ParseCodecError {}

impl FromStr for Codec {
    type Err = ParseCodecError;

    /// Parse `none`/`off`, `bf16`, `f16`/`fp16`/`half`, or `topk:N` with
    /// `N` in thousandths (1..=1000).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        match t.to_ascii_lowercase().as_str() {
            "none" | "off" | "raw" | "f32" => Ok(Codec::None),
            "bf16" | "bfloat16" => Ok(Codec::Bf16),
            "f16" | "fp16" | "half" => Ok(Codec::F16),
            lower => match lower.split_once(':') {
                Some(("topk", arg)) => match arg.parse::<u16>() {
                    Ok(p) if (1..=1000).contains(&p) => Ok(Codec::TopK { permille: p }),
                    _ => Err(ParseCodecError { value: t.to_string() }),
                },
                _ => Err(ParseCodecError { value: t.to_string() }),
            },
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codec::TopK { permille } => write!(f, "topk:{permille}"),
            other => f.write_str(other.label()),
        }
    }
}

/// EF-SGD residual accumulator: the gradient mass a lossy [`Codec`]
/// dropped on previous steps, fed back into the next step so compression
/// error stays bounded instead of compounding.
///
/// The residual is stored in *unscaled* gradient space (before the Eq. (9)
/// batch-ratio weight), so it remains meaningful when the weight changes
/// between steps as the adaptive split moves samples across nodes.
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// A zeroed residual for a `len`-parameter model.
    pub fn new(len: usize) -> Self {
        ErrorFeedback { residual: vec![0.0; len] }
    }

    /// Number of parameters this accumulator covers.
    pub fn len(&self) -> usize {
        self.residual.len()
    }

    /// Whether the accumulator covers zero parameters.
    pub fn is_empty(&self) -> bool {
        self.residual.is_empty()
    }

    /// Add the stored residual into `data` (which starts at parameter
    /// `offset` of the flat gradient).
    ///
    /// # Panics
    ///
    /// Panics if `offset + data.len()` exceeds the accumulator length.
    pub fn compensate(&self, data: &mut [f32], offset: usize) {
        let window = &self.residual[offset..offset + data.len()];
        for (d, r) in data.iter_mut().zip(window) {
            *d += *r;
        }
    }

    /// Record the new residual for the `offset`-based window:
    /// `residual = (ideal − actual) · scale`, where `scale` converts back
    /// into unscaled gradient space (pass `1/weight` after an Eq. (9)
    /// scaling, `1.0` otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or overrun the accumulator.
    pub fn record(&mut self, ideal: &[f32], actual: &[f32], offset: usize, scale: f32) {
        assert_eq!(ideal.len(), actual.len(), "error-feedback window mismatch");
        let window = &mut self.residual[offset..offset + ideal.len()];
        for ((r, i), a) in window.iter_mut().zip(ideal).zip(actual) {
            *r = (i - a) * scale;
        }
    }

    /// Clear the residual window starting at `offset` (used when a step
    /// runs uncompressed and no error remains to feed back).
    pub fn clear(&mut self, offset: usize, len: usize) {
        self.residual[offset..offset + len].fill(0.0);
    }
}

// ---- bfloat16 ----

/// `f32` → bf16 with round-to-nearest-even. NaNs are quieted (their
/// payload is truncated but a mantissa bit is forced so they stay NaN).
pub(crate) fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = ((bits >> 16) & 1) + 0x7FFF;
    (bits.wrapping_add(round) >> 16) as u16
}

/// bf16 → `f32` (exact: bf16 is the top half of the f32 bit pattern).
pub(crate) fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits(u32::from(h) << 16)
}

// ---- IEEE binary16 ----

/// `f32` → f16 with round-to-nearest-even, gradual underflow to the f16
/// subnormal range, saturation to ±∞ above the f16 range.
pub(crate) fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf stays Inf; NaN keeps a mantissa bit so it stays NaN.
        return sign | 0x7C00 | u16::from(man != 0) << 9;
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7C00; // overflow → ±∞
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with RNE. A mantissa carry
        // may overflow into the exponent — that is exactly the right
        // rounding (up to the next binade, or to ∞ at the top).
        let mut h = (((unbiased + 15) as u32) << 10) | (man >> 13);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && h & 1 == 1) {
            h += 1;
        }
        return sign | h as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the full significand (implicit bit
        // included) into place, rounding the dropped bits to even. The
        // −25 binade rounds up to the smallest subnormal when above its
        // midpoint and to zero at or below it — plain RNE.
        let full = man | 0x0080_0000;
        let shift = (13 - 14 - unbiased) as u32;
        let mut h = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && h & 1 == 1) {
            h += 1;
        }
        return sign | h as u16;
    }
    sign // underflow → ±0
}

/// f16 → `f32` (exact for every finite half value).
pub(crate) fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let man = u32::from(h & 0x03FF);
    match exp {
        0 => {
            // Subnormal: man · 2⁻²⁴, exact because the scale is a power
            // of two and man fits in 10 bits.
            let mag = man as f32 * f32::from_bits(0x3380_0000);
            f32::from_bits(mag.to_bits() | sign)
        }
        31 => f32::from_bits(sign | 0x7F80_0000 | (man << 13)),
        e => f32::from_bits(sign | ((u32::from(e) + 112) << 23) | (man << 13)),
    }
}

// ---- top-k sparsification ----

/// How many entries a `len`-element frame keeps at `permille`/1000.
fn topk_count(len: usize, permille: u16) -> usize {
    if len == 0 {
        return 0;
    }
    ((len * permille as usize).div_ceil(1000)).max(1)
}

/// Indices of the `k` largest-magnitude entries, deterministic under ties:
/// ordered by (`|v|` descending, index ascending) before the cut, returned
/// ascending. Uses `total_cmp` so NaN/∞ payloads still order consistently
/// on every rank.
fn topk_indices(values: &[f32], permille: u16) -> Vec<u32> {
    let k = topk_count(values.len(), permille);
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            values[b as usize]
                .abs()
                .total_cmp(&values[a as usize].abs())
                .then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

fn encode_topk(values: &[f32], permille: u16) -> Vec<u8> {
    let idx = topk_indices(values, permille);
    let mut out = Vec::with_capacity(8 + idx.len() * 8);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&(idx.len() as u32).to_le_bytes());
    for &i in &idx {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &i in &idx {
        out.extend_from_slice(&values[i as usize].to_le_bytes());
    }
    out
}

fn decode_topk(frame: &[u8]) -> Result<Vec<f32>, String> {
    if frame.len() < 8 {
        return Err(format!("top-k frame of {} bytes is shorter than its header", frame.len()));
    }
    let dense_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    let k = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
    if frame.len() != 8 + k * 8 {
        return Err(format!("top-k frame of {} bytes does not hold {k} entries", frame.len()));
    }
    let mut out = vec![0.0f32; dense_len];
    let (idx_bytes, val_bytes) = frame[8..].split_at(k * 4);
    for (ic, vc) in idx_bytes.chunks_exact(4).zip(val_bytes.chunks_exact(4)) {
        let i = u32::from_le_bytes([ic[0], ic[1], ic[2], ic[3]]) as usize;
        if i >= dense_len {
            return Err(format!("top-k index {i} out of range for dense length {dense_len}"));
        }
        out[i] = f32::from_le_bytes([vc[0], vc[1], vc[2], vc[3]]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_bitwise_lossless() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e30, f32::NEG_INFINITY];
        let frame = Codec::None.encode(&values);
        assert_eq!(frame.len(), values.len() * 4);
        let decoded = Codec::None.decode(&frame).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bf16_halves_bytes_and_bounds_error() {
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.37).collect();
        let frame = Codec::Bf16.encode(&values);
        assert_eq!(frame.len(), values.len() * 2);
        let decoded = Codec::Bf16.decode(&frame).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            // bf16 has 8 mantissa bits → relative error < 2⁻⁸.
            assert!((a - b).abs() <= a.abs() * 0.004 + 1e-30, "{a} vs {b}");
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // bf16 keeps 7 explicit mantissa bits: the ulp at 1.0 is 2⁻⁷.
        assert_eq!(f32_to_bf16(1.0), 0x3F80);
        assert_eq!(bf16_to_f32(f32_to_bf16(1.0078125)), 1.0078125, "1 + 2⁻⁷ is exact");
        // 1 + 2⁻⁸ is exactly halfway between 1.0 and 1 + 2⁻⁷; RNE keeps
        // the even mantissa (1.0).
        assert_eq!(bf16_to_f32(f32_to_bf16(1.00390625)), 1.0);
        // 1 + 3·2⁻⁸ is halfway with an odd low mantissa below it; RNE
        // rounds up to the even 1 + 2⁻⁶.
        assert_eq!(bf16_to_f32(f32_to_bf16(1.01171875)), 1.015625);
        // Above the midpoint always rounds up.
        assert_eq!(bf16_to_f32(f32_to_bf16(1.00390625 + 1e-4)), 1.0078125);
        // Specials survive.
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f32_to_bf16(-0.0).to_le_bytes()[1] & 0x80, 0x80, "sign survives");
    }

    #[test]
    fn f16_round_trips_exact_halves() {
        for v in [0.0f32, 1.0, -2.5, 0.5, 65504.0, -65504.0, 6.103_515_6e-5, 5.960_464_5e-8] {
            let q = f16_to_f32(f32_to_f16(v));
            assert_eq!(q, v, "{v} must be exactly representable in f16");
        }
        // Saturation and specials.
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1e6)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0, "deep underflow flushes to zero");
        assert_eq!(f32_to_f16(-1e-10), 0x8000, "…keeping the sign");
    }

    #[test]
    fn f16_subnormals_are_gradual() {
        // Half the smallest normal is a subnormal, not zero.
        let v = 3.05175781e-5f32; // 2⁻¹⁵
        let q = f16_to_f32(f32_to_f16(v));
        assert!(q > 0.0 && (q - v).abs() / v < 0.001, "{v} -> {q}");
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let values = vec![0.1f32, -5.0, 0.2, 3.0, -0.05, 0.0, 4.0, -0.3];
        let codec = Codec::TopK { permille: 375 }; // keep 3 of 8
        let decoded = codec.decode(&codec.encode(&values)).unwrap();
        assert_eq!(decoded, vec![0.0, -5.0, 0.0, 3.0, 0.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn topk_ties_break_by_lower_index() {
        let values = vec![1.0f32, -1.0, 1.0, 1.0];
        let codec = Codec::TopK { permille: 500 }; // keep 2 of 4
        let decoded = codec.decode(&codec.encode(&values)).unwrap();
        assert_eq!(decoded, vec![1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_empty_and_tiny_frames() {
        let codec = Codec::TopK { permille: 10 };
        assert_eq!(codec.decode(&codec.encode(&[])).unwrap(), Vec::<f32>::new());
        // k is floored at 1: a single element always travels.
        assert_eq!(codec.decode(&codec.encode(&[7.0])).unwrap(), vec![7.0]);
    }

    #[test]
    fn every_codec_is_idempotent() {
        let values: Vec<f32> = (0..257).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.5).collect();
        for codec in [
            Codec::None,
            Codec::Bf16,
            Codec::F16,
            Codec::TopK { permille: 100 },
            Codec::TopK { permille: 1000 },
        ] {
            let once = codec.encode(&values);
            let decoded = codec.decode(&once).unwrap();
            let twice = codec.encode(&decoded);
            assert_eq!(once, twice, "encode∘decode∘encode must be stable for {codec}");
            // quantize must agree with the wire round-trip.
            let mut q = values.clone();
            codec.quantize(&mut q);
            let qb: Vec<u32> = q.iter().map(|v| v.to_bits()).collect();
            let db: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
            assert_eq!(qb, db, "quantize must equal decode(encode(·)) for {codec}");
        }
    }

    #[test]
    fn frame_bytes_is_exact() {
        let values = vec![1.0f32; 123];
        for codec in [Codec::None, Codec::Bf16, Codec::F16, Codec::TopK { permille: 250 }] {
            assert_eq!(codec.encode(&values).len(), codec.frame_bytes(values.len()), "{codec}");
        }
        assert_eq!(Codec::TopK { permille: 250 }.frame_bytes(0), 8);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Codec::None.decode(&[0; 5]).is_err());
        assert!(Codec::Bf16.decode(&[0; 3]).is_err());
        assert!(Codec::F16.decode(&[0; 1]).is_err());
        let topk = Codec::TopK { permille: 100 };
        assert!(topk.decode(&[0; 4]).is_err(), "truncated header");
        let mut bad = topk.encode(&[1.0, 2.0, 3.0]);
        bad[8] = 200; // index beyond dense_len
        assert!(topk.decode(&bad).is_err(), "out-of-range index");
        bad.pop();
        assert!(topk.decode(&bad).is_err(), "length mismatch");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for (s, want) in [
            ("none", Codec::None),
            ("off", Codec::None),
            ("BF16", Codec::Bf16),
            ("f16", Codec::F16),
            ("fp16", Codec::F16),
            (" half ", Codec::F16),
            ("topk:100", Codec::TopK { permille: 100 }),
            ("topk:1000", Codec::TopK { permille: 1000 }),
        ] {
            assert_eq!(s.parse::<Codec>().unwrap(), want, "{s}");
        }
        for codec in [Codec::None, Codec::Bf16, Codec::F16, Codec::TopK { permille: 37 }] {
            assert_eq!(codec.to_string().parse::<Codec>().unwrap(), codec);
        }
    }

    #[test]
    fn parse_error_lists_valid_values() {
        for bad in ["gzip", "topk", "topk:0", "topk:1001", "topk:abc", ""] {
            let err = bad.parse::<Codec>().unwrap_err().to_string();
            for needle in ["`none`", "`bf16`", "`f16`", "`topk:PERMILLE`"] {
                assert!(err.contains(needle), "error for {bad:?} must list {needle}: {err}");
            }
        }
    }

    #[test]
    fn error_feedback_accumulates_dropped_mass() {
        let codec = Codec::TopK { permille: 500 };
        let mut ef = ErrorFeedback::new(4);
        // Step 1: [3, 1, -2, 0.5] keeps {3, -2}; residual holds {1, 0.5}.
        let mut g = vec![3.0f32, 1.0, -2.0, 0.5];
        ef.compensate(&mut g, 0);
        let ideal = g.clone();
        codec.quantize(&mut g);
        ef.record(&ideal, &g, 0, 1.0);
        assert_eq!(g, vec![3.0, 0.0, -2.0, 0.0]);
        // Step 2: the same raw gradient plus feedback now carries the
        // previously dropped entries forward.
        let mut g2 = vec![3.0f32, 1.0, -2.0, 0.5];
        ef.compensate(&mut g2, 0);
        assert_eq!(g2, vec![3.0, 2.0, -2.0, 1.0]);
    }

    #[test]
    fn error_feedback_windows_are_independent() {
        let mut ef = ErrorFeedback::new(6);
        ef.record(&[1.0, 1.0], &[0.0, 0.0], 2, 2.0);
        let mut g = vec![0.0f32; 6];
        ef.compensate(&mut g, 0);
        assert_eq!(g, vec![0.0, 0.0, 2.0, 2.0, 0.0, 0.0]);
        ef.clear(2, 2);
        let mut g = vec![0.0f32; 6];
        ef.compensate(&mut g, 0);
        assert_eq!(g, vec![0.0; 6]);
    }
}
