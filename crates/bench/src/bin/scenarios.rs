//! Run the capability-tagged scenario matrix and print (or write) the
//! structured report.
//!
//! ```text
//! scenarios [--out PATH] [--list]
//! ```
//!
//! Default: runs every compatible cell under the pinned seed, prints the
//! rendered table, and — with `--out` — writes the structured JSON that
//! `scenariogate` diffs against `BENCH_scenarios.json`. `--list` prints
//! the registry (scenarios, subjects, capability tags, compatible cell
//! count) without running anything.

use cannikin_bench::scenarios::{matrix, registry, scenario_report, subjects, Capability};
use std::process::ExitCode;

struct Args {
    out: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { out: None, list: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = Some(it.next().ok_or("--out needs a value")?),
            "--list" => args.list = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn tags(caps: &[Capability]) -> String {
    caps.iter().map(|c| c.label()).collect::<Vec<_>>().join(",")
}

fn print_registry() {
    println!("scenarios (requires):");
    for s in registry() {
        println!("  {:<20} [{}]  {}", s.name, tags(&s.requires), s.description);
    }
    println!("\nsubjects (provides):");
    for s in subjects() {
        println!("  {:<20} [{}]  {}", s.name, tags(&s.provides), s.description);
    }
    let cells = matrix();
    println!("\ncompatible matrix: {} cells", cells.len());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scenarios: {e}");
            eprintln!("usage: scenarios [--out PATH] [--list]");
            return ExitCode::from(2);
        }
    };

    if args.list {
        print_registry();
        return ExitCode::SUCCESS;
    }

    let cells = matrix();
    eprintln!("scenarios: running {} compatible cells (pinned seed)...", cells.len());
    let report = scenario_report();
    print!("{}", cannikin_bench::experiments::render_scenarios(&report));

    if let Some(path) = args.out {
        let rendered = report.to_json().to_string_compact();
        if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
            eprintln!("scenarios: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("scenarios: wrote {path}");
    }
    ExitCode::SUCCESS
}
