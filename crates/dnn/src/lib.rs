//! # minidnn — a from-scratch CPU deep-learning library
//!
//! `minidnn` provides the numerical substrate of the Cannikin reproduction:
//! dense tensors, explicitly differentiated neural-network layers, losses,
//! optimizers and learning-rate scalers, plus synthetic datasets that stand
//! in for the paper's ImageNet/CIFAR-10/LibriSpeech/SQuAD/MovieLens
//! workloads at laptop scale.
//!
//! The library intentionally mirrors the subset of PyTorch that the paper's
//! training loops rely on:
//!
//! - [`tensor::Tensor`] — contiguous row-major `f32` tensors with the usual
//!   elementwise, reduction and matrix-multiplication kernels;
//! - [`layers`] — a [`layers::Layer`] trait with cached-activation
//!   forward/backward passes (linear, conv2d, embedding, layer norm,
//!   activations, pooling, dropout, sequential composition);
//! - [`loss`] — cross-entropy, mean-squared-error and binary cross-entropy
//!   losses that produce both the scalar loss and the input gradient;
//! - [`optim`] — SGD with momentum, Adam and AdamW;
//! - [`lr`] — the AdaScale and square-root learning-rate scalers used in
//!   Table 5 of the paper;
//! - [`data`] — deterministic synthetic datasets and batch loaders,
//!   including uneven (heterogeneity-aware) partitioned loading;
//! - [`models`] — small reference models (MLP, CNN, NeuMF-style two-tower)
//!   used by the examples and the functional integration tests.
//!
//! ## Example
//!
//! ```
//! use minidnn::layers::{Layer, Linear, Relu, Sequential};
//! use minidnn::loss::{Loss, SoftmaxCrossEntropy};
//! use minidnn::optim::{Optimizer, Sgd};
//! use minidnn::tensor::Tensor;
//!
//! let mut model = Sequential::new()
//!     .push(Linear::new(4, 16, 1))
//!     .push(Relu::new())
//!     .push(Linear::new(16, 3, 2));
//! let mut opt = Sgd::new(0.1).momentum(0.9);
//! let x = Tensor::randn(&[8, 4], 42);
//! let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//!
//! let logits = model.forward(&x, true);
//! let (loss, grad) = SoftmaxCrossEntropy::default().loss(&logits, &y);
//! model.backward(&grad);
//! opt.step(&mut model.parameters_mut());
//! assert!(loss.is_finite());
//! ```

// Indexed loops are the clearest way to write the numerical kernels in
// this crate (explicit strides, symmetric forward/backward passes);
// clippy's iterator suggestions would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod data;
pub mod error;
pub mod layers;
pub mod loss;
pub mod lr;
pub mod models;
pub mod optim;
pub mod rng;
pub mod tensor;

pub use error::DnnError;
pub use tensor::Tensor;
