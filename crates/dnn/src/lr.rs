//! Learning-rate scaling rules for adaptive batch sizes.
//!
//! When an adaptive system grows the global batch from `B₀` to `B`, the
//! learning rate must be rescaled or convergence degrades. Table 5 of the
//! paper uses two rules:
//!
//! - **AdaScale** (vision/speech + SGD): the gain form derived from the
//!   gradient-noise analysis of McCandlish et al., `r(B) = (1 + φ/B₀) /
//!   (1 + φ/B)` where `φ` is the gradient noise scale. The gain is bounded
//!   by `1 + φ/B₀` as `B → ∞`, which is what makes AdaScale safe at large
//!   batch sizes.
//! - **Square-root** (Adam/AdamW): `r(B) = sqrt(B / B₀)`.
//!
//! A linear rule is included for completeness (classic Goyal et al.
//! scaling).

/// A learning-rate scaling rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrScaler {
    /// Gradient-noise-aware gain (used with SGD in the paper).
    AdaScale,
    /// `sqrt(B/B₀)` (used with Adam/AdamW in the paper).
    SquareRoot,
    /// `B/B₀`.
    Linear,
}

impl LrScaler {
    /// Multiplicative gain to apply to the base learning rate when training
    /// with global batch `batch` instead of `base_batch`.
    ///
    /// `noise_scale` is the current gradient noise scale estimate `φ`
    /// (`B_noise` in the paper); it is only used by [`LrScaler::AdaScale`],
    /// where a missing estimate falls back to linear scaling capped at 2×
    /// (the conservative warm-up behaviour of the AdaScale reference
    /// implementation).
    ///
    /// # Panics
    ///
    /// Panics if `base_batch == 0` or `batch == 0`.
    pub fn gain(&self, base_batch: u64, batch: u64, noise_scale: Option<f64>) -> f64 {
        assert!(base_batch > 0 && batch > 0, "batch sizes must be positive");
        let ratio = batch as f64 / base_batch as f64;
        match self {
            LrScaler::AdaScale => match noise_scale {
                Some(phi) if phi > 0.0 => {
                    (1.0 + phi / base_batch as f64) / (1.0 + phi / batch as f64)
                }
                _ => ratio.min(2.0),
            },
            LrScaler::SquareRoot => ratio.sqrt(),
            LrScaler::Linear => ratio,
        }
    }

    /// Learning rate for the given batch: `base_lr * gain`.
    pub fn scaled_lr(&self, base_lr: f64, base_batch: u64, batch: u64, noise_scale: Option<f64>) -> f64 {
        base_lr * self.gain(base_batch, batch, noise_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gain_at_base_batch() {
        for scaler in [LrScaler::AdaScale, LrScaler::SquareRoot, LrScaler::Linear] {
            assert!((scaler.gain(64, 64, Some(100.0)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn adascale_gain_bounded() {
        let phi = 500.0;
        let b0 = 64u64;
        let bound = 1.0 + phi / b0 as f64;
        let g_small = LrScaler::AdaScale.gain(b0, 128, Some(phi));
        let g_huge = LrScaler::AdaScale.gain(b0, 1_000_000, Some(phi));
        assert!(g_small > 1.0 && g_small < bound);
        assert!(g_huge < bound && g_huge > g_small);
    }

    #[test]
    fn adascale_between_one_and_linear() {
        // The AdaScale gain never exceeds the linear ratio.
        let phi = 200.0;
        for b in [128u64, 256, 512, 1024] {
            let g = LrScaler::AdaScale.gain(64, b, Some(phi));
            let linear = b as f64 / 64.0;
            assert!(g >= 1.0 && g <= linear, "gain {g} for batch {b}");
        }
    }

    #[test]
    fn adascale_without_noise_caps_at_two() {
        assert_eq!(LrScaler::AdaScale.gain(64, 1024, None), 2.0);
        assert!((LrScaler::AdaScale.gain(64, 96, None) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sqrt_and_linear_rules() {
        assert!((LrScaler::SquareRoot.gain(64, 256, None) - 2.0).abs() < 1e-12);
        assert!((LrScaler::Linear.gain(64, 256, None) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_lr_multiplies_base() {
        let lr = LrScaler::SquareRoot.scaled_lr(0.1, 64, 256, None);
        assert!((lr - 0.2).abs() < 1e-12);
    }

    #[test]
    fn downscaling_reduces_lr() {
        // Shrinking the batch below B₀ lowers the learning rate for every rule.
        for scaler in [LrScaler::AdaScale, LrScaler::SquareRoot, LrScaler::Linear] {
            assert!(scaler.gain(64, 32, Some(100.0)) < 1.0, "{scaler:?}");
        }
    }
}

/// A learning-rate schedule over optimizer steps, composed *on top of* the
/// batch-size gain of [`LrScaler`]: canonical recipes warm up linearly and
/// then decay (ResNet: steps; BERT: linear; modern defaults: cosine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Linear warmup over `warmup_steps`, then flat.
    Warmup {
        /// Steps to ramp from 0 to the base rate.
        warmup_steps: u64,
    },
    /// Linear warmup, then cosine decay to `floor × base` at `total_steps`.
    WarmupCosine {
        /// Steps to ramp from 0 to the base rate.
        warmup_steps: u64,
        /// Total steps of the schedule (clamped afterwards).
        total_steps: u64,
        /// Final rate as a fraction of the base rate.
        floor: f64,
    },
    /// Multiply the rate by `gamma` every `every` steps (classic ResNet
    /// staircase).
    Step {
        /// Interval between decays.
        every: u64,
        /// Multiplicative decay per interval.
        gamma: f64,
    },
}

impl LrSchedule {
    /// Multiplier to apply to the base learning rate at optimizer step
    /// `step` (0-based).
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero intervals, `floor` outside
    /// `[0, 1]`, `gamma` outside `(0, 1]`).
    pub fn factor(&self, step: u64) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup_steps } => {
                assert!(warmup_steps > 0, "warmup must cover at least one step");
                ((step + 1) as f64 / warmup_steps as f64).min(1.0)
            }
            LrSchedule::WarmupCosine { warmup_steps, total_steps, floor } => {
                assert!(warmup_steps > 0 && total_steps > warmup_steps, "schedule must be longer than warmup");
                assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
                if step < warmup_steps {
                    return (step + 1) as f64 / warmup_steps as f64;
                }
                let progress = ((step - warmup_steps) as f64 / (total_steps - warmup_steps) as f64).min(1.0);
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f64::consts::PI * progress).cos())
            }
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "decay interval must be positive");
                assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
                gamma.powi((step / every) as i32)
            }
        }
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for step in [0u64, 10, 1_000_000] {
            assert_eq!(LrSchedule::Constant.factor(step), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_then_flattens() {
        let s = LrSchedule::Warmup { warmup_steps: 4 };
        assert!((s.factor(0) - 0.25).abs() < 1e-12);
        assert!((s.factor(3) - 1.0).abs() < 1e-12);
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn warmup_cosine_hits_floor() {
        let s = LrSchedule::WarmupCosine { warmup_steps: 10, total_steps: 110, floor: 0.1 };
        assert!(s.factor(0) < 0.2);
        assert!((s.factor(9) - 1.0).abs() < 1e-12, "end of warmup");
        // Midpoint of the cosine: halfway between 1 and floor.
        let mid = s.factor(60);
        assert!((mid - 0.55).abs() < 0.01, "midpoint {mid}");
        assert!((s.factor(110) - 0.1).abs() < 1e-9);
        assert!((s.factor(10_000) - 0.1).abs() < 1e-9, "clamped after the horizon");
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = LrSchedule::WarmupCosine { warmup_steps: 5, total_steps: 105, floor: 0.0 };
        let mut prev = s.factor(5);
        for step in 6..105 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-12, "step {step}: {f} > {prev}");
            prev = f;
        }
    }

    #[test]
    fn step_decay_staircase() {
        let s = LrSchedule::Step { every: 30, gamma: 0.1 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(29), 1.0);
        assert!((s.factor(30) - 0.1).abs() < 1e-12);
        assert!((s.factor(89) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn composes_with_batch_gain() {
        // The schedule multiplies the AdaScale-scaled rate.
        let scaler = LrScaler::AdaScale;
        let schedule = LrSchedule::Step { every: 10, gamma: 0.5 };
        let base = scaler.scaled_lr(0.1, 64, 256, Some(500.0));
        let at_step_25 = base * schedule.factor(25);
        assert!((at_step_25 - base * 0.25).abs() < 1e-12);
    }
}
