//! Elementwise and reduction kernels for [`Tensor`].

use super::Tensor;

impl Tensor {
    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Elementwise division.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "div", |a, b| a / b)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Add a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_assign<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, op: &'static str, f: F) -> Tensor {
        assert_eq!(self.shape, other.shape, "{op} shape mismatch: {:?} vs {:?}", self.shape, other.shape);
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Sum of all elements (accumulated in `f64` for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| f64::from(x)).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.data.is_empty(), "mean of empty tensor");
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm, accumulated in `f64`.
    ///
    /// The gradient-noise-scale estimators consume `|g|^2` values, so this is
    /// the hottest reduction in the functional training path.
    pub fn sq_l2(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x) * f64::from(x)).sum()
    }

    /// Dot product with another tensor of identical shape, in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum()
    }

    /// Row-wise sum of a 2-D-viewed tensor: returns a tensor of shape
    /// `[cols]` holding the sum over rows for each column.
    pub fn sum_rows(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor { shape: vec![c], data: out }
    }

    /// Add a `[cols]`-shaped bias vector to every row of a 2-D-viewed tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(bias.len(), c, "broadcast bias length mismatch");
        let mut out = self.clone();
        for (i, v) in out.data.iter_mut().enumerate() {
            *v += bias.data[i % c];
        }
        out
    }

    /// Index of the maximum element in each row of a 2-D-viewed tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter().enumerate().fold((0usize, f32::NEG_INFINITY), |acc, (j, &v)| if v > acc.1 { (j, v) } else { acc }).0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).data(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "add shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = Tensor::ones(&[2]).add(&Tensor::ones(&[3]));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = t(&[1.0, 2.0], &[2]);
        let b = t(&[10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0, -4.0], &[2, 2]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sq_l2(), 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(a.dot(&a), a.sq_l2());
    }

    #[test]
    fn sum_rows_and_broadcast() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_rows().data(), &[5.0, 7.0, 9.0]);
        let bias = t(&[10.0, 20.0, 30.0], &[3]);
        assert_eq!(a.add_row_broadcast(&bias).data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = t(&[1.0, 5.0, 5.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn scale_and_map() {
        let a = t(&[1.0, 2.0], &[2]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0]);
        let mut b = a.clone();
        b.scale_assign(-1.0);
        assert_eq!(b.data(), &[-1.0, -2.0]);
        b.map_assign(f32::abs);
        assert_eq!(b.data(), &[1.0, 2.0]);
    }

    #[test]
    fn sum_is_stable_for_many_small_values() {
        let a = Tensor::full(&[100_000], 0.1);
        assert!((f64::from(a.sum()) - 10_000.0).abs() < 0.5);
    }
}
