//! In-memory time series over the event stream: ring-buffer storage,
//! windowed aggregation, quantile queries, and Prometheus-style text
//! exposition.
//!
//! The store is deliberately *outside* the hot path: training code keeps
//! emitting through the recorder's thread-local buffers (a single relaxed
//! atomic load when telemetry is off), and a [`SeriesRecorder`] subscriber
//! folds flushed batches into a [`SeriesStore`] on the emitting thread's
//! flush boundary. Nothing here allocates per `emit` call.
//!
//! Three point kinds are supported, keyed by `(metric name, label set)`:
//!
//! - **counters** — monotone totals (`fleet_admissions_total{job="…"}`),
//!   with a ring of recent cumulative values for windowed rates;
//! - **gauges** — last-value-wins samples with a ring of recent values
//!   (`fleet_queue_depth`, `fleet_job_granted{job="…"}`);
//! - **histograms** — fixed-bucket [`Histogram`]s with quantile queries
//!   (`fleet_queue_wait_seconds`), rendered as Prometheus summaries.
//!
//! Everything the store exposes is a pure function of the ingested record
//! sequence — no wall-clock reads — so same-seed runs render byte-identical
//! expositions.
//!
//! ## Example
//!
//! ```
//! use cannikin_telemetry::series::{Labels, SeriesStore};
//!
//! let store = SeriesStore::new(256);
//! let job = Labels::new().with("job", "cifar-0");
//! store.counter_add("fleet_admissions_total", job.clone(), 1.0);
//! store.gauge_set("fleet_job_granted", job.clone(), 3.0);
//! assert_eq!(store.last("fleet_job_granted", &job), Some(3.0));
//! let text = store.render_prometheus();
//! assert!(text.contains("fleet_admissions_total{job=\"cifar-0\"} 1"));
//! ```

use crate::event::{Event, Record};
use crate::hist::Histogram;
use crate::recorder::{subscribe, Subscriber, SubscriberGuard};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// A sorted, deduplicated label set (`{job="cifar-0",node="a100-1"}`).
///
/// Labels are kept sorted by key so equal sets compare equal regardless
/// of insertion order, and so the Prometheus rendering is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn new() -> Labels {
        Labels(Vec::new())
    }

    /// Add (or replace) one label, keeping keys sorted.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Labels {
        let key = key.into();
        let value = value.into();
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key, value)),
        }
        self
    }

    /// Look one label up by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| self.0[i].1.as_str())
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Prometheus exposition form: `{k="v",…}`, or `""` when empty. An
    /// extra pair (the `quantile` pseudo-label) can be appended.
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<(&str, &str)> = self.0.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        if let Some(pair) = extra {
            pairs.push(pair);
        }
        if pairs.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
        out
    }
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Aggregates over the most recent samples of one series
/// (see [`SeriesStore::window`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Samples in the window (≤ requested, ≤ ring capacity).
    pub count: usize,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Mean of the window.
    pub mean: f64,
    /// Sum of the window.
    pub sum: f64,
    /// Most recent sample.
    pub last: f64,
}

/// Fixed-capacity ring of `(ingest sequence, value)` samples.
#[derive(Debug)]
struct Ring {
    cap: usize,
    samples: VecDeque<(u64, f64)>,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring { cap, samples: VecDeque::with_capacity(cap.min(64)) }
    }

    fn push(&mut self, seq: u64, value: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back((seq, value));
    }

    fn last(&self) -> Option<f64> {
        self.samples.back().map(|&(_, v)| v)
    }

    fn window(&self, last_n: usize) -> Option<WindowStats> {
        let n = last_n.min(self.samples.len());
        if n == 0 {
            return None;
        }
        let tail = self.samples.iter().skip(self.samples.len() - n).map(|&(_, v)| v);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut last = 0.0;
        for v in tail {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            last = v;
        }
        Some(WindowStats { count: n, min, max, mean: sum / n as f64, sum, last })
    }

    /// Nearest-rank quantile over the newest `last_n` samples.
    fn quantile(&self, q: f64, last_n: usize) -> Option<f64> {
        let n = last_n.min(self.samples.len());
        if n == 0 {
            return None;
        }
        let mut values: Vec<f64> =
            self.samples.iter().skip(self.samples.len() - n).map(|&(_, v)| v).collect();
        values.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        Some(values[rank - 1])
    }
}

#[derive(Debug)]
enum SeriesData {
    Counter { total: f64, ring: Ring },
    Gauge { ring: Ring },
    Hist(Histogram),
}

impl SeriesData {
    fn type_name(&self) -> &'static str {
        match self {
            SeriesData::Counter { .. } => "counter",
            SeriesData::Gauge { .. } => "gauge",
            SeriesData::Hist(_) => "summary",
        }
    }
}

/// One series' identity and per-series update count.
#[derive(Debug)]
struct Entry {
    data: SeriesData,
    /// Samples ever written, independent of ring capacity.
    updates: u64,
}

struct Inner {
    capacity: usize,
    seq: u64,
    series: BTreeMap<(String, Labels), Entry>,
}

/// The ring-buffer time-series store. Cheap interior mutability via one
/// `parking_lot` mutex: writes happen on subscriber flush boundaries, not
/// per event, so contention is negligible.
pub struct SeriesStore {
    inner: Mutex<Inner>,
}

impl SeriesStore {
    /// Default per-series ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A store whose rings hold the newest `capacity` samples per series.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> SeriesStore {
        assert!(capacity > 0, "series ring capacity must be positive");
        SeriesStore { inner: Mutex::new(Inner { capacity, seq: 0, series: BTreeMap::new() }) }
    }

    /// Add `delta` to a counter series (creating it at zero). Non-finite
    /// deltas, and calls against an existing series of a different kind,
    /// are ignored.
    pub fn counter_add(&self, name: &str, labels: Labels, delta: f64) {
        if !delta.is_finite() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let capacity = inner.capacity;
        let entry = inner
            .series
            .entry((name.to_string(), labels))
            .or_insert_with(|| Entry { data: SeriesData::Counter { total: 0.0, ring: Ring::new(capacity) }, updates: 0 });
        if let SeriesData::Counter { total, ring } = &mut entry.data {
            *total += delta;
            let cumulative = *total;
            ring.push(seq, cumulative);
            entry.updates += 1;
        }
    }

    /// Set a gauge series to `value`. Non-finite values, and calls against
    /// an existing series of a different kind, are ignored.
    pub fn gauge_set(&self, name: &str, labels: Labels, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let capacity = inner.capacity;
        let entry = inner
            .series
            .entry((name.to_string(), labels))
            .or_insert_with(|| Entry { data: SeriesData::Gauge { ring: Ring::new(capacity) }, updates: 0 });
        if let SeriesData::Gauge { ring } = &mut entry.data {
            ring.push(seq, value);
            entry.updates += 1;
        }
    }

    /// Record one observation into a histogram series (exponential
    /// buckets from 1 µs, ×2, 32 buckets — microseconds to hours).
    /// Non-finite values, and calls against an existing series of a
    /// different kind, are ignored.
    pub fn observe(&self, name: &str, labels: Labels, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let entry = inner
            .series
            .entry((name.to_string(), labels))
            .or_insert_with(|| Entry { data: SeriesData::Hist(Histogram::exponential(1e-6, 2.0, 32)), updates: 0 });
        if let SeriesData::Hist(hist) = &mut entry.data {
            hist.record(value);
            entry.updates += 1;
        }
    }

    /// A counter's running total.
    pub fn counter_total(&self, name: &str, labels: &Labels) -> Option<f64> {
        let inner = self.inner.lock();
        match inner.series.get(&(name.to_string(), labels.clone()))?.data {
            SeriesData::Counter { total, .. } => Some(total),
            _ => None,
        }
    }

    /// The most recent value of a counter (cumulative) or gauge series.
    pub fn last(&self, name: &str, labels: &Labels) -> Option<f64> {
        let inner = self.inner.lock();
        match &inner.series.get(&(name.to_string(), labels.clone()))?.data {
            SeriesData::Counter { ring, .. } | SeriesData::Gauge { ring } => ring.last(),
            SeriesData::Hist(h) => h.mean(),
        }
    }

    /// Samples ever written into a series (not capped by ring capacity).
    pub fn updates(&self, name: &str, labels: &Labels) -> Option<u64> {
        let inner = self.inner.lock();
        inner.series.get(&(name.to_string(), labels.clone())).map(|e| e.updates)
    }

    /// Windowed aggregates over the newest `last_n` samples of a counter
    /// or gauge ring (`None` for histograms or unknown series).
    pub fn window(&self, name: &str, labels: &Labels, last_n: usize) -> Option<WindowStats> {
        let inner = self.inner.lock();
        match &inner.series.get(&(name.to_string(), labels.clone()))?.data {
            SeriesData::Counter { ring, .. } | SeriesData::Gauge { ring } => ring.window(last_n),
            SeriesData::Hist(_) => None,
        }
    }

    /// The `q`-quantile of a series: interpolated for histogram series,
    /// nearest-rank over the retained ring for counters/gauges.
    pub fn quantile(&self, name: &str, labels: &Labels, q: f64) -> Option<f64> {
        let inner = self.inner.lock();
        match &inner.series.get(&(name.to_string(), labels.clone()))?.data {
            SeriesData::Counter { ring, .. } | SeriesData::Gauge { ring } => ring.quantile(q, usize::MAX),
            SeriesData::Hist(h) => h.quantile(q),
        }
    }

    /// Number of distinct `(name, labels)` series.
    pub fn series_count(&self) -> usize {
        self.inner.lock().series.len()
    }

    /// Distinct metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.series.keys().map(|(n, _)| n.clone()).collect();
        names.dedup();
        names
    }

    /// Fold one record into the store. This is the event→series mapping
    /// the [`SeriesRecorder`] subscriber applies online; offline analyses
    /// can feed a drained trace through it to reconstruct the same store.
    pub fn ingest(&self, record: &Record) {
        match &record.event {
            Event::StepTiming(e) => {
                let rank = Labels::new().with("rank", e.rank.to_string());
                self.observe("step_compute_seconds", rank.clone(), e.t_compute);
                self.observe("step_comm_seconds", rank, e.t_comm);
            }
            Event::AllReduceBucket(e) => {
                self.observe("all_reduce_seconds", Labels::new(), e.wall_ns as f64 * 1e-9);
            }
            Event::SolverInvocation(e) => {
                self.observe("solver_seconds", Labels::new(), e.wall_ns as f64 * 1e-9);
            }
            Event::GnsEstimated(e) => {
                self.gauge_set("gns_b_noise", Labels::new(), e.b_noise);
            }
            Event::GoodputEval(e) => {
                self.gauge_set("goodput_predicted", Labels::new(), e.goodput);
                self.gauge_set("batch_total", Labels::new(), e.total as f64);
            }
            Event::FleetDecision(e) => {
                self.counter_add("fleet_decisions_total", Labels::new(), 1.0);
                self.counter_add("fleet_reassigned_total", Labels::new(), f64::from(e.reassigned));
                self.gauge_set("fleet_running", Labels::new(), f64::from(e.running));
                self.gauge_set("fleet_queued", Labels::new(), f64::from(e.queued));
                self.gauge_set("fleet_pool", Labels::new(), f64::from(e.pool));
            }
            Event::FleetJobSample(e) => {
                let job = Labels::new().with("job", e.job.clone());
                self.gauge_set("fleet_job_granted", job.clone(), f64::from(e.granted));
                self.gauge_set("fleet_job_demanded", job.clone(), f64::from(e.demanded));
                self.gauge_set("fleet_job_weighted_service", job, e.weighted_service);
            }
            Event::JobAdmitted(e) => {
                self.counter_add("fleet_admissions_total", Labels::new().with("job", e.job.clone()), 1.0);
                self.observe("fleet_queue_wait_seconds", Labels::new(), e.queued_s);
            }
            Event::JobPreempted(e) => {
                let labels = Labels::new().with("job", e.job.clone()).with("reason", e.reason.as_str());
                self.counter_add("fleet_preemptions_total", labels, 1.0);
            }
            Event::NodeGranted(e) => {
                self.counter_add("fleet_node_grants_total", Labels::new().with("job", e.job.clone()), 1.0);
            }
            Event::FaultInjected(e) => {
                self.counter_add("faults_total", Labels::new().with("kind", e.kind.as_str()), 1.0);
            }
            Event::RecoveryAction(e) => {
                self.counter_add("recoveries_total", Labels::new().with("kind", e.kind.as_str()), 1.0);
            }
            Event::AnomalyDetected(e) => {
                self.counter_add("anomalies_total", Labels::new().with("kind", e.kind.as_str()), 1.0);
            }
            Event::SloViolation(e) => {
                self.counter_add("slo_violations_total", Labels::new().with("rule", e.rule.clone()), 1.0);
            }
            Event::Counter(e) => {
                self.gauge_set(&e.name, Labels::new(), e.value);
            }
            Event::PolicyDecision(e) => {
                self.counter_add("policy_decisions_total", Labels::new().with("policy", e.policy.clone()), 1.0);
            }
            Event::SplitDecision(_) | Event::SpanBegin(_) | Event::SpanEnd(_) => {}
        }
    }

    /// The Prometheus text exposition of the whole store: `# TYPE` header
    /// per metric, series sorted by `(name, labels)`, histograms rendered
    /// as summaries (`quantile` pseudo-label plus `_sum`/`_count`). No
    /// timestamps, so same inputs render byte-identical text.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in &inner.series {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", entry.data.type_name());
                last_name = Some(name.as_str());
            }
            match &entry.data {
                SeriesData::Counter { total, .. } => {
                    let _ = writeln!(out, "{name}{} {total}", labels.render(None));
                }
                SeriesData::Gauge { ring } => {
                    if let Some(v) = ring.last() {
                        let _ = writeln!(out, "{name}{} {v}", labels.render(None));
                    }
                }
                SeriesData::Hist(h) => {
                    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        if let Some(v) = h.quantile(q) {
                            let _ = writeln!(out, "{name}{} {v}", labels.render(Some(("quantile", tag))));
                        }
                    }
                    let count = h.count();
                    let sum = h.mean().map_or(0.0, |m| m * count as f64);
                    let _ = writeln!(out, "{name}_sum{} {sum}", labels.render(None));
                    let _ = writeln!(out, "{name}_count{} {count}", labels.render(None));
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SeriesStore")
            .field("capacity", &inner.capacity)
            .field("series", &inner.series.len())
            .finish()
    }
}

/// Bridges the recorder's subscriber API into a [`SeriesStore`]: every
/// flushed batch is folded through [`SeriesStore::ingest`]. Dropping the
/// recorder unsubscribes; the store (an `Arc`) outlives it if shared.
pub struct SeriesRecorder {
    store: Arc<SeriesStore>,
    _guard: SubscriberGuard,
}

struct Tap {
    store: Arc<SeriesStore>,
    only_rank: Option<u32>,
}

impl Subscriber for Tap {
    fn on_records(&self, batch: &[Record]) {
        for record in batch {
            if self.only_rank.is_some_and(|r| r != record.rank) {
                continue;
            }
            self.store.ingest(record);
        }
    }
}

impl SeriesRecorder {
    /// Install a series subscriber with the default ring capacity,
    /// ingesting records from every rank.
    pub fn install() -> SeriesRecorder {
        SeriesRecorder::install_with(SeriesStore::DEFAULT_CAPACITY, None)
    }

    /// Install with an explicit ring capacity and an optional rank filter
    /// (useful when several tests share the process-global recorder).
    pub fn install_with(capacity: usize, only_rank: Option<u32>) -> SeriesRecorder {
        let store = Arc::new(SeriesStore::new(capacity));
        let guard = subscribe(Arc::new(Tap { store: Arc::clone(&store), only_rank }));
        SeriesRecorder { store, _guard: guard }
    }

    /// The underlying store (shared; remains valid after the recorder
    /// drops).
    pub fn store(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, FleetDecision, FleetJobSample, JobAdmitted, SloViolation};

    fn rec(event: Event) -> Record {
        Record { ts_ns: 0, node: 0, rank: 0, event }
    }

    #[test]
    fn counters_accumulate_and_windows_aggregate() {
        let store = SeriesStore::new(8);
        let job = Labels::new().with("job", "a");
        for _ in 0..5 {
            store.counter_add("grants", job.clone(), 2.0);
        }
        assert_eq!(store.counter_total("grants", &job), Some(10.0));
        assert_eq!(store.updates("grants", &job), Some(5));
        let w = store.window("grants", &job, 3).unwrap();
        assert_eq!(w.count, 3);
        assert_eq!(w.last, 10.0); // cumulative values: 6, 8, 10
        assert_eq!(w.min, 6.0);
        assert_eq!(w.sum, 24.0);
    }

    #[test]
    fn gauges_keep_last_value_and_rings_evict() {
        let store = SeriesStore::new(4);
        let l = Labels::new();
        for i in 0..10 {
            store.gauge_set("depth", l.clone(), i as f64);
        }
        assert_eq!(store.last("depth", &l), Some(9.0));
        assert_eq!(store.updates("depth", &l), Some(10));
        // Ring holds only the newest 4 samples: 6, 7, 8, 9.
        let w = store.window("depth", &l, 100).unwrap();
        assert_eq!(w.count, 4);
        assert_eq!(w.min, 6.0);
        assert_eq!(w.max, 9.0);
        // Nearest-rank median of {6,7,8,9}: rank ceil(0.5*4) = 2 -> 7.
        assert_eq!(store.quantile("depth", &l, 0.5), Some(7.0));
    }

    #[test]
    fn histogram_series_answer_quantiles() {
        let store = SeriesStore::new(8);
        for i in 1..=100 {
            store.observe("wait_s", Labels::new(), i as f64 * 0.01);
        }
        let p95 = store.quantile("wait_s", &Labels::new(), 0.95).unwrap();
        assert!(p95 > 0.5 && p95 < 1.5, "p95={p95}");
        assert!(store.window("wait_s", &Labels::new(), 10).is_none(), "histograms have no ring window");
    }

    #[test]
    fn kind_mismatch_and_non_finite_samples_are_ignored() {
        let store = SeriesStore::new(8);
        let l = Labels::new();
        store.gauge_set("x", l.clone(), 1.0);
        store.counter_add("x", l.clone(), 5.0); // wrong kind: ignored
        store.gauge_set("x", l.clone(), f64::NAN); // non-finite: ignored
        assert_eq!(store.last("x", &l), Some(1.0));
        assert_eq!(store.updates("x", &l), Some(1));
        assert_eq!(store.counter_total("x", &l), None);
    }

    #[test]
    fn labels_sort_dedupe_and_escape() {
        let a = Labels::new().with("b", "2").with("a", "1");
        let b = Labels::new().with("a", "0").with("b", "2").with("a", "1");
        assert_eq!(a, b, "label sets compare by content, not insertion order");
        assert_eq!(a.get("a"), Some("1"));
        let tricky = Labels::new().with("job", "a\"b\\c");
        assert_eq!(tricky.render(None), r#"{job="a\"b\\c"}"#);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let store = SeriesStore::new(8);
        store.gauge_set("fleet_running", Labels::new(), 3.0);
        store.counter_add("grants", Labels::new().with("job", "b"), 1.0);
        store.counter_add("grants", Labels::new().with("job", "a"), 2.0);
        store.observe("wait_s", Labels::new(), 0.25);
        let text = store.render_prometheus();
        let a = text.find(r#"grants{job="a"} 2"#).expect("job=a line");
        let b = text.find(r#"grants{job="b"} 1"#).expect("job=b line");
        assert!(a < b, "series sorted by labels");
        assert!(text.contains("# TYPE grants counter"));
        assert!(text.contains("# TYPE fleet_running gauge"));
        assert!(text.contains("# TYPE wait_s summary"));
        assert!(text.contains("wait_s_count 1"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, store.render_prometheus());
    }

    #[test]
    fn ingest_maps_fleet_events_to_series() {
        let store = SeriesStore::new(16);
        store.ingest(&rec(Event::FleetDecision(FleetDecision {
            decision: 0,
            running: 2,
            queued: 1,
            reassigned: 3,
            pool: 8,
        })));
        store.ingest(&rec(Event::FleetJobSample(FleetJobSample {
            decision: 0,
            job: "a".into(),
            granted: 3,
            demanded: 5,
            weighted_service: 12.5,
        })));
        store.ingest(&rec(Event::JobAdmitted(JobAdmitted { job: "a".into(), nodes: 3, queued_s: 7.5 })));
        store.ingest(&rec(Event::SloViolation(SloViolation {
            rule: "goodput_floor".into(),
            job: None,
            threshold: 1.0,
            observed: 0.5,
            at: 4,
        })));
        store.ingest(&rec(Event::Counter(Counter { name: "fleet_goodput".into(), value: 42.0 })));
        let job = Labels::new().with("job", "a");
        assert_eq!(store.last("fleet_running", &Labels::new()), Some(2.0));
        assert_eq!(store.last("fleet_job_granted", &job), Some(3.0));
        assert_eq!(store.last("fleet_job_demanded", &job), Some(5.0));
        assert_eq!(store.counter_total("fleet_admissions_total", &job), Some(1.0));
        assert_eq!(
            store.counter_total("slo_violations_total", &Labels::new().with("rule", "goodput_floor")),
            Some(1.0)
        );
        assert_eq!(store.last("fleet_goodput", &Labels::new()), Some(42.0));
        assert!(store.quantile("fleet_queue_wait_seconds", &Labels::new(), 0.5).is_some());
    }

    #[test]
    fn series_recorder_folds_flushed_batches() {
        use crate::recorder::{emit, flush_thread, set_thread_identity, Session};
        // A unique rank keeps concurrently-running tests (which share the
        // process-global recorder) out of this store.
        let recorder = SeriesRecorder::install_with(64, Some(4242));
        let session = Session::start();
        {
            let _id = set_thread_identity(9, 4242);
            emit(Event::Counter(Counter { name: "tick".into(), value: 1.5 }));
            emit(Event::FleetDecision(FleetDecision { decision: 0, running: 1, queued: 0, reassigned: 1, pool: 4 }));
            flush_thread();
        }
        let store = recorder.store();
        assert_eq!(store.last("tick", &Labels::new()), Some(1.5));
        assert_eq!(store.last("fleet_running", &Labels::new()), Some(1.0));
        drop(session);
    }
}
