//! Row-wise softmax utilities.
//!
//! Shared by the attention layer, the cross-entropy loss and downstream
//! users that need calibrated probabilities (e.g. top-k metrics).

use super::Tensor;

impl Tensor {
    /// Numerically stable row-wise softmax of a 2-D-viewed tensor.
    pub fn softmax_rows(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[r, c]);
        for i in 0..r {
            let row = &self.data()[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for j in 0..c {
                let e = (row[j] - max).exp();
                out.data_mut()[i * c + j] = e;
                sum += e;
            }
            for j in 0..c {
                out.data_mut()[i * c + j] /= sum;
            }
        }
        out
    }

    /// Numerically stable row-wise log-softmax of a 2-D-viewed tensor.
    pub fn log_softmax_rows(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[r, c]);
        for i in 0..r {
            let row = &self.data()[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_z = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            for j in 0..c {
                out.data_mut()[i * c + j] = row[j] - log_z;
            }
        }
        out
    }

    /// Indices of the `k` largest elements of each row, best first.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > cols()`.
    pub fn topk_rows(&self, k: usize) -> Vec<Vec<usize>> {
        let (r, c) = (self.rows(), self.cols());
        assert!(k >= 1 && k <= c, "k = {k} out of range for {c} columns");
        (0..r)
            .map(|i| {
                let row = &self.data()[i * c..(i + 1) * c];
                let mut idx: Vec<usize> = (0..c).collect();
                idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
                idx.truncate(k);
                idx
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_are_distributions() {
        let t = Tensor::randn(&[5, 7], 11).scale(4.0);
        let s = t.softmax_rows();
        for i in 0..5 {
            let row = &s.data()[i * 7..(i + 1) * 7];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_at_extreme_logits() {
        let t = Tensor::from_vec(vec![1000.0, 999.0, -1000.0], &[1, 3]).unwrap();
        let s = t.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!(s.data()[0] > s.data()[1] && s.data()[1] > s.data()[2]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::randn(&[3, 4], 12);
        let a = t.log_softmax_rows();
        let b = t.softmax_rows().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn topk_orders_best_first() {
        let t = Tensor::from_vec(vec![0.1, 0.7, 0.2, 0.9, 0.0, 0.05], &[2, 3]).unwrap();
        let top2 = t.topk_rows(2);
        assert_eq!(top2[0], vec![1, 2]);
        assert_eq!(top2[1], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topk_rejects_oversized_k() {
        let _ = Tensor::ones(&[1, 2]).topk_rows(3);
    }
}
