//! # cannikin-core — the Cannikin system
//!
//! The paper's contribution, implemented as four layers:
//!
//! 1. **Measurement** ([`perf`]) — per-node linear compute-time models
//!    (`a_i = q_i·b + s_i`, `P_i = k_i·b + m_i`) learned online by least
//!    squares from batch traces, and cluster-wide constants (γ, `T_o`,
//!    `T_u`) fused across nodes by inverse-variance weighting (§4.5).
//! 2. **Optimization** ([`optperf`]) — the *OptPerf* solver: given a total
//!    batch size it determines each node's overlap state
//!    (compute-bottleneck vs communication-bottleneck) and the optimal
//!    local batch split (Algorithm 1 + Appendix A), plus the Eq. (8)
//!    bootstrap used while no model exists yet.
//! 3. **Statistics** ([`gns`]) — heterogeneity-correct gradient noise
//!    scale: the unbiased per-node estimators of Eq. (10) combined with the
//!    minimum-variance weights of Theorem 4.1, and the Pollux-style
//!    statistical-efficiency model built on it.
//! 4. **Control** ([`goodput`], [`engine`]) — goodput-maximizing total
//!    batch selection with the `OptPerf_init` candidate cache and
//!    warm-started overlap-state search, the epoch-level
//!    [`engine::CannikinTrainer`] driving a [`hetsim::Simulator`], and the
//!    thread-parallel functional trainer ([`engine::parallel`]) that runs
//!    real `minidnn` models through real ring all-reduce.
//!
//! ## Example: one OptPerf solve
//!
//! ```
//! use cannikin_core::optperf::{OptPerfSolver, SolverInput};
//! use hetsim::catalog::Gpu;
//! use hetsim::cluster::{ClusterSpec, NodeSpec};
//! use hetsim::job::JobSpec;
//!
//! let cluster = ClusterSpec::new(
//!     "demo",
//!     vec![NodeSpec::new("fast", Gpu::A100), NodeSpec::new("slow", Gpu::Rtx6000)],
//! );
//! let input = SolverInput::from_ground_truth(&cluster, &JobSpec::resnet50_imagenet());
//! let plan = OptPerfSolver::new(input).solve(128).expect("feasible");
//! assert_eq!(plan.local_batches.iter().sum::<u64>(), 128);
//! // The A100 gets the larger share.
//! assert!(plan.local_batches[0] > plan.local_batches[1]);
//! ```

// Indexed loops keep the linear-system and split arithmetic explicit.
#![allow(clippy::needless_range_loop)]

pub mod engine;
pub mod error;
pub mod gns;
pub mod goodput;
pub mod linalg;
pub mod optperf;
pub mod perf;
pub mod planner;
pub mod policy;
pub mod runtime;

pub use error::CannikinError;
pub use runtime::RuntimeOptions;
