//! Record a short heterogeneous training run and export the event stream.
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```
//!
//! Runs five Cannikin epochs of ResNet-18/CIFAR-10 on cluster B with the
//! telemetry recorder enabled, then writes the drained stream twice:
//! as a JSONL log (one event per line, for offline analysis) and as a
//! Chrome `trace_event` file (load it in `chrome://tracing` or Perfetto
//! to see the epoch/plan/simulate spans and per-rank step timings).
//!
//! If `CANNIKIN_TELEMETRY=jsonl:/path[,chrome:/path]` is set, the stream
//! is additionally exported to those targets.

use cannikin::prelude::*;
use cannikin::telemetry::{self, export};
use cannikin::workloads::{clusters, profiles};

fn main() {
    let profile = profiles::cifar10_resnet18();
    let cluster = clusters::cluster_b();
    println!("{} on cluster {} ({} GPUs), 5 epochs, recording on\n", profile.name(), cluster.name, cluster.len());

    let base = profile.base_batch.max(cluster.len() as u64);
    let sim = Simulator::new(cluster, profile.job.clone(), 17);
    let mut trainer = CannikinTrainer::builder()
        .simulator(sim)
        .noise(profile.noise)
        .dataset_size(profile.dataset_size)
        .batch_range(base, profile.max_batch)
        .build()
        .expect("valid configuration");

    let session = telemetry::Session::start();
    let _identity = telemetry::set_thread_identity(0, 0);
    trainer.run_epochs(5).expect("training run");
    let records = session.drain();
    drop(session);

    println!("recorded {} events", records.len());
    let steps = records.iter().filter(|r| r.event.kind() == "step_timing").count();
    let splits = records.iter().filter(|r| r.event.kind() == "split_decision").count();
    println!("  {steps} per-node step timings, {splits} split decisions\n");

    let dir = std::env::temp_dir();
    let jsonl_path = dir.join("cannikin_trace.jsonl");
    let chrome_path = dir.join("cannikin_trace.chrome.json");
    export::write_jsonl(&jsonl_path, &records).expect("write jsonl");
    export::write_chrome_trace(&chrome_path, &records).expect("write chrome trace");
    println!("JSONL log:    {}", jsonl_path.display());
    println!("Chrome trace: {}  (open in chrome://tracing)", chrome_path.display());

    match telemetry::export_from_env(&records) {
        Ok(paths) => {
            for p in paths {
                println!("{}:   {}", telemetry::env::ENV_VAR, p.display());
            }
        }
        Err(e) => eprintln!("{}: {e}", telemetry::env::ENV_VAR),
    }
}
