//! Weighted fusion of scalar observation streams.

use super::MeasurementAggregation;

/// A fused scalar estimate with its accumulated weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fused {
    /// Current weighted mean.
    pub value: f64,
    /// Total weight absorbed so far (number of observations for naive
    /// averaging, Σ1/σᵢ² for inverse-variance weighting).
    pub weight: f64,
}

/// Running weighted mean over observations `(x, σ²_rel)`.
///
/// With [`MeasurementAggregation::InverseVariance`] each observation is
/// weighted `1/σ²`; with [`MeasurementAggregation::NaiveMean`] all
/// observations weigh 1. The estimate is windowless (a true running mean):
/// the constants being estimated — γ, `T_comm`, `T_u` — are stationary for
/// a fixed (cluster, job) pair, per §3.2.2.
#[derive(Debug, Clone)]
pub struct WeightedFuser {
    mode: MeasurementAggregation,
    sum_w: f64,
    sum_wx: f64,
}

impl WeightedFuser {
    /// Create a fuser with the given aggregation mode.
    pub fn new(mode: MeasurementAggregation) -> Self {
        WeightedFuser { mode, sum_w: 0.0, sum_wx: 0.0 }
    }

    /// Fold in one observation with relative variance `rel_variance`.
    ///
    /// Observations with non-finite values are ignored; a zero variance
    /// under IVW is clamped to a tiny floor rather than producing an
    /// infinite weight.
    pub fn observe(&mut self, value: f64, rel_variance: f64) {
        if !value.is_finite() || !rel_variance.is_finite() || rel_variance < 0.0 {
            return;
        }
        let w = match self.mode {
            MeasurementAggregation::InverseVariance => 1.0 / rel_variance.max(1e-12),
            MeasurementAggregation::NaiveMean => 1.0,
        };
        self.sum_w += w;
        self.sum_wx += w * value;
    }

    /// Current estimate, or `None` before any observation.
    pub fn estimate(&self) -> Option<Fused> {
        (self.sum_w > 0.0).then(|| Fused { value: self.sum_wx / self.sum_w, weight: self.sum_w })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_mean_is_plain_average() {
        let mut f = WeightedFuser::new(MeasurementAggregation::NaiveMean);
        f.observe(1.0, 0.01);
        f.observe(3.0, 100.0);
        assert!((f.estimate().unwrap().value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ivw_discounts_noisy_observers() {
        let mut f = WeightedFuser::new(MeasurementAggregation::InverseVariance);
        f.observe(1.0, 1e-4); // precise
        f.observe(100.0, 1.0); // very noisy outlier
        let v = f.estimate().unwrap().value;
        assert!(v < 1.1, "fused {v} should stay near the precise observation");
    }

    #[test]
    fn ivw_beats_naive_on_synthetic_streams() {
        // Two observers of a constant 5.0: one with sigma 0.01, one with
        // sigma 0.5. IVW's squared error must be smaller.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut normal = move || {
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut err_ivw = 0.0;
        let mut err_naive = 0.0;
        for _ in 0..300 {
            let mut ivw = WeightedFuser::new(MeasurementAggregation::InverseVariance);
            let mut naive = WeightedFuser::new(MeasurementAggregation::NaiveMean);
            for _ in 0..4 {
                let precise = 5.0 + 0.01 * normal();
                let noisy = 5.0 + 0.5 * normal();
                ivw.observe(precise, 1e-4);
                ivw.observe(noisy, 0.25);
                naive.observe(precise, 1e-4);
                naive.observe(noisy, 0.25);
            }
            err_ivw += (ivw.estimate().unwrap().value - 5.0).powi(2);
            err_naive += (naive.estimate().unwrap().value - 5.0).powi(2);
        }
        assert!(err_ivw < err_naive / 10.0, "ivw {err_ivw} vs naive {err_naive}");
    }

    #[test]
    fn ignores_garbage() {
        let mut f = WeightedFuser::new(MeasurementAggregation::InverseVariance);
        f.observe(f64::NAN, 0.01);
        f.observe(1.0, f64::INFINITY);
        assert!(f.estimate().is_none());
        f.observe(2.0, 0.01);
        assert_eq!(f.estimate().unwrap().value, 2.0);
    }

    #[test]
    fn zero_variance_does_not_poison() {
        let mut f = WeightedFuser::new(MeasurementAggregation::InverseVariance);
        f.observe(1.0, 0.0);
        f.observe(2.0, 0.0);
        let v = f.estimate().unwrap().value;
        assert!((v - 1.5).abs() < 1e-9);
    }
}
