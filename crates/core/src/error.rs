//! Error type for `cannikin-core`.

use cannikin_collectives::CommError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the Cannikin solver, estimators and engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CannikinError {
    /// The requested total batch size cannot be split across the cluster
    /// (e.g. smaller than the node count, or larger than the sum of memory
    /// caps).
    InfeasibleBatch {
        /// Requested total batch size.
        total: u64,
        /// Why it cannot be satisfied.
        reason: String,
    },
    /// Not enough observations to build a model (fewer than two distinct
    /// local batch sizes seen on some node).
    ModelNotReady {
        /// Node that lacks data.
        node: usize,
    },
    /// A linear system arising in the solver or the Theorem 4.1 weighting
    /// was singular.
    SingularSystem(&'static str),
    /// An estimator received invalid inputs (e.g. a local batch equal to
    /// the global batch, for which Eq. (10) is undefined).
    InvalidEstimate(String),
    /// A builder or runtime option was rejected before any training ran
    /// (bad env value, batch smaller than the node count, …).
    InvalidConfig(String),
    /// The collective layer failed (socket setup, dropped peer, exhausted
    /// retries). Wraps the transport's [`CommError`] so engine recovery
    /// paths can use `?`.
    Comm(CommError),
}

impl fmt::Display for CannikinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CannikinError::InfeasibleBatch { total, reason } => {
                write!(f, "total batch {total} is infeasible: {reason}")
            }
            CannikinError::ModelNotReady { node } => {
                write!(f, "performance model not ready for node {node}")
            }
            CannikinError::SingularSystem(what) => write!(f, "singular linear system in {what}"),
            CannikinError::InvalidEstimate(msg) => write!(f, "invalid estimate: {msg}"),
            CannikinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CannikinError::Comm(e) => write!(f, "collective communication failed: {e}"),
        }
    }
}

impl Error for CannikinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CannikinError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for CannikinError {
    fn from(e: CommError) -> Self {
        CannikinError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CannikinError::InfeasibleBatch { total: 3, reason: "4 nodes".into() };
        assert!(e.to_string().contains("infeasible"));
        assert!(CannikinError::ModelNotReady { node: 2 }.to_string().contains("node 2"));
        assert!(CannikinError::SingularSystem("gns").to_string().contains("gns"));
    }

    #[test]
    fn comm_errors_convert_and_chain() {
        let comm = CommError::Dropped { rank: 1 };
        let e: CannikinError = comm.clone().into();
        assert_eq!(e, CannikinError::Comm(comm));
        assert!(e.to_string().contains("rank 1"));
        assert!(e.source().is_some(), "wrapped comm error must be the source");
        assert!(CannikinError::InvalidConfig("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CannikinError>();
    }
}
