//! A minimal self-contained JSON value model.
//!
//! The workspace deliberately carries no `serde_json` dependency (the
//! build must work from the vendored dependency set alone), so the
//! exporters serialize through this module instead. It supports exactly
//! the JSON subset the telemetry formats need — objects, arrays, strings,
//! finite numbers, booleans and null — plus a recursive-descent parser
//! used by the round-trip tests and the Chrome-trace validity checks.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats must be mapped to [`Json::Null`]
    /// by the caller before construction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list (insertion order is
    /// preserved so exports are deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a number, mapping non-finite values to `null` (JSON has no
    /// NaN/Infinity literals).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (exactly one value, surrounding whitespace
    /// allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(v: f64, out: &mut String) {
    debug_assert!(v.is_finite(), "use Json::num for possibly non-finite values");
    if v.fract() == 0.0 && v.abs() < 1e15 {
        // Whole numbers print without a fractional part so integer fields
        // round-trip exactly.
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        let _ = write!(out, "{v}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\"y\n".into())])),
            ("c".into(), Json::Num(0.25)),
        ]);
        let text = v.to_string_compact();
        assert_eq!(text, r#"{"a":1,"b":[true,null,"x\"y\n"],"c":0.25}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, 4096, 1_000_000_007, 1 << 52] {
            let text = Json::Num(n as f64).to_string_compact();
            assert_eq!(text, n.to_string());
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(1.5), Json::Num(1.5));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e2 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }
}
