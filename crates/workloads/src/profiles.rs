//! The five Table 5 workload profiles.

use crate::convergence::SaturatingCurve;
use cannikin_core::engine::LinearNoiseGrowth;
use hetsim::job::JobSpec;
use serde::{Deserialize, Serialize};

/// The convergence target of a workload (Table 5 "Target" column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetMetric {
    /// Metric name ("Top-1 accuracy", "WER", …).
    pub name: &'static str,
    /// Target value (fractions for percentages: 0.75 = 75%).
    pub value: f64,
    /// Whether larger is better (false for WER).
    pub higher_is_better: bool,
}

/// One evaluation workload: the Table 5 row plus the simulator-facing
/// calibration (noise trajectory, metric curve, batch range).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Task family ("Image Classification", …).
    pub task: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Compute shape consumed by the simulator.
    pub job: JobSpec,
    /// Samples per dataset epoch.
    pub dataset_size: usize,
    /// Initial/reference batch size B₀ (Table 5).
    pub base_batch: u64,
    /// Upper end of the adaptive batch range (memory-bounded, §5.1).
    pub max_batch: u64,
    /// Optimizer (Table 5).
    pub optimizer: &'static str,
    /// Learning-rate scaler (Table 5).
    pub lr_scaler: &'static str,
    /// Convergence target (Table 5).
    pub target: TargetMetric,
    /// Gradient-noise trajectory φ(effective epochs).
    pub noise: LinearNoiseGrowth,
    /// Metric-vs-progress curve calibrated to published epochs-to-target.
    pub curve: SaturatingCurve,
}

impl WorkloadProfile {
    /// Short display name ("ResNet-50/ImageNet").
    pub fn name(&self) -> String {
        format!("{}/{}", self.model, self.dataset)
    }

    /// Metric value after the given statistical progress.
    pub fn metric_at(&self, effective_epochs: f64) -> f64 {
        self.curve.value_at(effective_epochs)
    }

    /// Effective epochs needed to hit the Table 5 target.
    ///
    /// # Panics
    ///
    /// Panics if the calibrated curve cannot reach the target (a profile
    /// construction bug, covered by tests).
    pub fn target_effective_epochs(&self) -> f64 {
        self.curve.progress_to(self.target.value).expect("profile target must be reachable")
    }

    /// Whether a metric value meets the target.
    pub fn meets_target(&self, metric: f64) -> bool {
        if self.target.higher_is_better {
            metric >= self.target.value
        } else {
            metric <= self.target.value
        }
    }
}

/// ResNet-50 on ImageNet: SGD + AdaScale, B₀ = 100, target 75% top-1.
pub fn imagenet_resnet50() -> WorkloadProfile {
    WorkloadProfile {
        task: "Image Classification",
        dataset: "ImageNet",
        model: "ResNet-50",
        job: JobSpec::resnet50_imagenet(),
        dataset_size: 1_281_167,
        base_batch: 100,
        max_batch: 8_000,
        optimizer: "SGD",
        lr_scaler: "AdaScale",
        target: TargetMetric { name: "Top-1 accuracy", value: 0.75, higher_is_better: true },
        noise: LinearNoiseGrowth { initial: 1_500.0, rate: 0.08 },
        // 75% reached at ~60 effective epochs (90-epoch schedules hit 76%).
        curve: SaturatingCurve { start: 0.10, limit: 0.78, rate: 0.052 },
    }
}

/// ResNet-18 on CIFAR-10: SGD + AdaScale, B₀ = 64, target 94% top-1.
pub fn cifar10_resnet18() -> WorkloadProfile {
    WorkloadProfile {
        task: "Image Classification",
        dataset: "CIFAR-10",
        model: "ResNet-18",
        job: JobSpec::resnet18_cifar10(),
        dataset_size: 50_000,
        base_batch: 64,
        max_batch: 4_096,
        optimizer: "SGD",
        lr_scaler: "AdaScale",
        target: TargetMetric { name: "Top-1 accuracy", value: 0.94, higher_is_better: true },
        noise: LinearNoiseGrowth { initial: 400.0, rate: 0.10 },
        // 94% at ~70 effective epochs.
        curve: SaturatingCurve { start: 0.30, limit: 0.955, rate: 0.054 },
    }
}

/// DeepSpeech2 on LibriSpeech: SGD + AdaScale, B₀ = 12, target WER 40%.
pub fn librispeech_deepspeech2() -> WorkloadProfile {
    WorkloadProfile {
        task: "Speech Recognition",
        dataset: "LibriSpeech",
        model: "DeepSpeech2",
        job: JobSpec::deepspeech2_librispeech(),
        dataset_size: 281_241,
        base_batch: 12,
        max_batch: 448,
        optimizer: "SGD",
        lr_scaler: "AdaScale",
        target: TargetMetric { name: "WER", value: 0.40, higher_is_better: false },
        noise: LinearNoiseGrowth { initial: 150.0, rate: 0.15 },
        // WER 40% at ~25 effective epochs.
        curve: SaturatingCurve { start: 1.0, limit: 0.25, rate: 0.064 },
    }
}

/// BERT fine-tuning on SQuAD: AdamW + square-root scaling, B₀ = 9, target F1 88.
pub fn squad_bert() -> WorkloadProfile {
    WorkloadProfile {
        task: "Question Answering",
        dataset: "SQuAD",
        model: "BERT",
        job: JobSpec::bert_squad(),
        dataset_size: 88_524,
        base_batch: 9,
        max_batch: 256,
        optimizer: "AdamW",
        lr_scaler: "Square-Root",
        target: TargetMetric { name: "F1", value: 0.88, higher_is_better: true },
        // Fine-tuning GNS for BERT-class models sits in the low hundreds
        // and grows quickly (McCandlish et al., App. A).
        noise: LinearNoiseGrowth { initial: 180.0, rate: 1.5 },
        // F1 88 at ~2.5 effective epochs (typical 2–3 epoch fine-tune).
        curve: SaturatingCurve { start: 0.20, limit: 0.905, rate: 1.33 },
    }
}

/// NeuMF on MovieLens: Adam + square-root scaling, B₀ = 64 (per the
/// paper's footnote the initial batch is small relative to the range),
/// target hit rate 69%.
pub fn movielens_neumf() -> WorkloadProfile {
    WorkloadProfile {
        task: "Recommendation",
        dataset: "MovieLens",
        model: "NeuMF",
        job: JobSpec::neumf_movielens(),
        dataset_size: 994_169,
        base_batch: 64,
        max_batch: 32_768,
        optimizer: "Adam",
        lr_scaler: "Square-Root",
        target: TargetMetric { name: "Hit rate", value: 0.69, higher_is_better: true },
        noise: LinearNoiseGrowth { initial: 500.0, rate: 0.20 },
        // 69% hit rate at ~15 effective epochs.
        curve: SaturatingCurve { start: 0.30, limit: 0.72, rate: 0.176 },
    }
}

/// All five Table 5 workloads, in table order.
pub fn all() -> Vec<WorkloadProfile> {
    vec![
        imagenet_resnet50(),
        cifar10_resnet18(),
        librispeech_deepspeech2(),
        squad_bert(),
        movielens_neumf(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_match_paper() {
        let profiles = all();
        assert_eq!(profiles.len(), 5);
        let b0: Vec<u64> = profiles.iter().map(|p| p.base_batch).collect();
        assert_eq!(b0, vec![100, 64, 12, 9, 64]);
        let optimizers: Vec<&str> = profiles.iter().map(|p| p.optimizer).collect();
        assert_eq!(optimizers, vec!["SGD", "SGD", "SGD", "AdamW", "Adam"]);
        let sizes: Vec<u64> = profiles.iter().map(|p| p.job.params).collect();
        assert_eq!(sizes, vec![25_600_000, 11_000_000, 52_000_000, 110_000_000, 5_200_000]);
    }

    #[test]
    fn every_target_is_reachable() {
        for p in all() {
            let t = p.target_effective_epochs();
            assert!(t > 0.0 && t.is_finite(), "{}: {t}", p.name());
            // And the curve actually crosses it.
            let before = p.metric_at(t * 0.5);
            let after = p.metric_at(t * 1.01);
            assert!(!p.meets_target(before), "{} met target too early", p.name());
            assert!(p.meets_target(after), "{} missed target after crossing", p.name());
        }
    }

    #[test]
    fn calibrated_epochs_to_target() {
        // Sanity-pin the calibration: these drive every convergence figure.
        assert!((imagenet_resnet50().target_effective_epochs() - 60.0).abs() < 2.0);
        assert!((cifar10_resnet18().target_effective_epochs() - 70.0).abs() < 2.0);
        assert!((librispeech_deepspeech2().target_effective_epochs() - 25.0).abs() < 1.5);
        assert!((squad_bert().target_effective_epochs() - 2.5).abs() < 0.3);
        assert!((movielens_neumf().target_effective_epochs() - 15.0).abs() < 1.0);
    }

    #[test]
    fn wer_is_lower_better() {
        let p = librispeech_deepspeech2();
        assert!(!p.target.higher_is_better);
        assert!(p.meets_target(0.35));
        assert!(!p.meets_target(0.45));
    }

    #[test]
    fn max_batch_within_cluster_b_memory() {
        use crate::clusters::cluster_b;
        let cluster = cluster_b();
        for p in all() {
            let cap: u64 = cluster.nodes.iter().map(|n| p.job.max_local_batch(n.effective_memory_bytes())).sum();
            assert!(p.max_batch <= cap, "{}: range top {} exceeds memory cap {cap}", p.name(), p.max_batch);
        }
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::NodeSpec;
    use hetsim::timing::node_coefficients;

    /// Per-GPU throughputs implied by the timing model must sit in the
    /// ballpark of published numbers for these model/GPU pairs — the
    /// calibration that makes the compute/communication balance (and with
    /// it every figure's shape) meaningful.
    #[test]
    fn single_gpu_throughputs_are_plausible() {
        let cases: [(&str, WorkloadProfile, Gpu, f64, f64, f64); 5] = [
            // (label, profile, gpu, cpu_factor, min samples/s, max samples/s)
            ("resnet50/V100", imagenet_resnet50(), Gpu::V100, 1.0, 150.0, 700.0),
            ("resnet18-cifar/V100", cifar10_resnet18(), Gpu::V100, 1.0, 800.0, 5_000.0),
            ("deepspeech2/V100", librispeech_deepspeech2(), Gpu::V100, 1.0, 8.0, 80.0),
            ("bert/A100", squad_bert(), Gpu::A100, 1.0, 40.0, 250.0),
            ("neumf/V100", movielens_neumf(), Gpu::V100, 1.0, 20_000.0, 300_000.0),
        ];
        for (label, profile, gpu, cpu, lo, hi) in cases {
            let node = NodeSpec::new("n", gpu).with_cpu_factor(cpu);
            let c = node_coefficients(&node, &profile.job);
            // Steady-state throughput at a healthy batch: slope-dominated.
            let b = 64.0;
            let per_sample = c.compute(b) / b;
            let throughput = 1.0 / per_sample;
            assert!(
                throughput > lo && throughput < hi,
                "{label}: {throughput:.0} samples/s outside [{lo}, {hi}]"
            );
        }
    }

    /// The communication/computation balance on cluster B: gradients per
    /// step must take the same order of magnitude as computing a
    /// medium-sized batch — the regime in which the paper's overlap
    /// modelling matters at all.
    #[test]
    fn comm_compute_balance_is_in_the_contested_regime() {
        use crate::clusters::cluster_b;
        use hetsim::timing::comm_times;
        let cluster = cluster_b();
        for p in all() {
            let (t_comm, _, _) = comm_times(&cluster, &p.job);
            let slowest = cluster
                .nodes
                .iter()
                .map(|n| node_coefficients(n, &p.job).compute(32.0))
                .fold(0.0f64, f64::max);
            let ratio = t_comm / slowest;
            assert!(
                (0.01..=100.0).contains(&ratio),
                "{}: T_comm/compute(32) = {ratio:.3} is out of any contested regime",
                p.name()
            );
        }
    }
}
