//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is deliberately minimal: contiguous storage, explicit shapes,
//! and the kernel set required by the layers in [`crate::layers`]. There is
//! no view/stride machinery — every operation produces contiguous output —
//! which keeps the backward passes easy to audit.

mod init;
mod matmul;
mod ops;
pub mod scratch;
mod softmax;
pub mod threads;

pub use matmul::{gemm, gemm_a_bt, gemm_at_b, matmul, matmul_a_bt, matmul_at_b, reference, simd};

use crate::error::DnnError;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use minidnn::tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Avoid dumping megabytes of floats: show shape and a data prefix.
        let prefix: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(f, "Tensor{{shape: {:?}, data: {:?}{}}}", self.shape, prefix, ellipsis)
    }
}

impl Tensor {
    /// Create a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Create a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Create a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; len] }
    }

    /// Create a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when `data.len()` differs from the
    /// product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, DnnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected || shape.is_empty() {
            return Err(DnnError::ShapeMismatch { shape: shape.to_vec(), len: data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// Create a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: vec![data.len()], data: data.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows when viewed as 2-D (first dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not at least 1-D (cannot happen: construction
    /// requires one dimension).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns when viewed as 2-D: the product of all trailing
    /// dimensions.
    pub fn cols(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != shape.len()` or any coordinate is out of
    /// bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::at`].
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            off = off * s + i;
        }
        off
    }

    /// Reinterpret the tensor with a new shape of the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape from {:?} to {shape:?}", self.shape);
        self.shape = shape.to_vec();
        self
    }

    /// Borrow a contiguous row range `[start, end)` of a 2-D-viewed tensor
    /// as a new tensor (copies the data).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows(), "row slice {start}..{end} of {}", self.rows());
        let cols = self.cols();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor { shape, data: self.data[start * cols..end * cols].to_vec() }
    }

    /// Stack tensors along the first dimension. All inputs must share
    /// trailing dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing dimensions differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut rows = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "concat_rows trailing shape mismatch");
            rows += p.shape[0];
        }
        let mut shape = vec![rows];
        shape.extend_from_slice(tail);
        let mut data = Vec::with_capacity(rows * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { shape, data }
    }

    /// Transpose a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2d requires a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { shape: vec![c, r], data: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 12);
    }

    #[test]
    fn from_vec_rejects_bad_shape() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![], &[]).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::ones(&[4, 3]).reshape(&[2, 6]);
        assert_eq!(t.shape(), &[2, 6]);
        assert_eq!(t.len(), 12);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_wrong_count() {
        let _ = Tensor::ones(&[4, 3]).reshape(&[5, 2]);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let a = t.slice_rows(0, 2);
        let b = t.slice_rows(2, 4);
        let back = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(back, t);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2d().transpose2d();
        assert_eq!(tt, t);
        assert_eq!(t.transpose2d().at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn debug_is_bounded() {
        let t = Tensor::zeros(&[100, 100]);
        let s = format!("{t:?}");
        assert!(s.len() < 200, "debug output should be truncated: {s}");
        assert!(s.contains("shape"));
    }

    #[test]
    fn mutate_through_at_mut() {
        let mut t = Tensor::zeros(&[2, 2]);
        *t.at_mut(&[1, 1]) = 5.0;
        assert_eq!(t.at(&[1, 1]), 5.0);
        assert_eq!(t.sum(), 5.0);
    }
}
