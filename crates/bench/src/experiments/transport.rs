//! Collective-transport comparison (ISSUE 5): the same training work over
//! in-process channels versus real localhost TCP sockets — wall time,
//! bytes on the wire, and the bitwise-equivalence check that justifies
//! treating the backends as interchangeable.

use crate::{fmt, row};
use cannikin_collectives::{CommGroup, TransportKind};
use cannikin_core::engine::ParallelTrainer;
use minidnn::data::gaussian_blobs;
use minidnn::models::mlp_classifier;
use std::thread;
use std::time::Instant;

/// One raw weighted all-reduce of `elems` f32s over `n` ranks, returning
/// (wall seconds, bytes sent per rank, rank-0 result bits).
fn all_reduce_once(kind: &TransportKind, n: usize, elems: usize) -> (f64, u64, Vec<u32>) {
    let comms = CommGroup::with_kind(n, kind, None).expect("group forms");
    let start = Instant::now();
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                let mut data: Vec<f32> =
                    (0..elems).map(|i| ((i * 31 + comm.rank() * 17) as f32).sin()).collect();
                comm.weighted_all_reduce(&mut data, 1.0 / (comm.rank() + 2) as f32);
                (comm.bytes_sent(), data)
            })
        })
        .collect();
    let results: Vec<(u64, Vec<f32>)> =
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
    let wall = start.elapsed().as_secs_f64();
    let bytes = results[0].0;
    let bits = results[0].1.iter().map(|v| v.to_bits()).collect();
    (wall, bytes, bits)
}

/// One `ParallelTrainer` epoch on the given backend, returning
/// (wall seconds, gradient bytes on the wire, first-epoch loss).
fn epoch_once(kind: TransportKind) -> (f64, u64, f64) {
    let mut trainer = ParallelTrainer::builder()
        .dataset(gaussian_blobs(384, 6, 8, 19))
        .model(|seed| mlp_classifier(8, 16, 6, seed))
        .slowdowns(vec![1.0, 1.5, 2.0])
        .batch_range(48, 96)
        .adaptive(false)
        .seed(11)
        .transport(kind)
        .build()
        .expect("valid config");
    let start = Instant::now();
    let report = trainer.run_epoch().expect("epoch");
    (start.elapsed().as_secs_f64(), report.comm_bytes, report.mean_loss)
}

/// Transport comparison: raw collectives and a real training epoch on
/// each backend, plus the cross-backend bitwise check.
pub fn transport() -> String {
    let n = 3;
    let elems = 60_000;
    let mut out = String::from("Collective transports — identical work, in-process channels vs localhost TCP\n");
    out += &format!("\nraw weighted all-reduce, {n} ranks x {elems} f32:\n");
    let widths = [12, 12, 16, 14];
    out += &row(
        &["backend".into(), "wall (s)".into(), "bytes/rank".into(), "vs channels".into()],
        &widths,
    );
    out.push('\n');

    let mut reduce_bits = Vec::new();
    let mut base_wall = None;
    for kind in [TransportKind::InProcess, TransportKind::tcp()] {
        let (wall, bytes, bits) = all_reduce_once(&kind, n, elems);
        let slowdown = match base_wall {
            None => {
                base_wall = Some(wall);
                "1.00x".to_string()
            }
            Some(base) => format!("{:.2}x", wall / base),
        };
        out += &row(
            &[kind.label().into(), fmt(wall), bytes.to_string(), slowdown],
            &widths,
        );
        out.push('\n');
        reduce_bits.push(bits);
    }
    let bitwise = reduce_bits[0] == reduce_bits[1];
    out += &format!("bitwise identical across backends: {bitwise}\n");
    assert!(bitwise, "transport backends must agree bitwise");

    out.push_str("\nparallel-trainer epoch, 3 ranks (MLP on gaussian blobs, B=48):\n");
    out += &row(
        &["backend".into(), "wall (s)".into(), "grad bytes".into(), "epoch-0 loss".into()],
        &widths,
    );
    out.push('\n');
    let mut losses = Vec::new();
    for kind in [TransportKind::InProcess, TransportKind::tcp()] {
        let label = kind.label();
        let (wall, bytes, loss) = epoch_once(kind);
        out += &row(&[label.into(), fmt(wall), bytes.to_string(), format!("{loss:.6}")], &widths);
        out.push('\n');
        losses.push(loss);
    }
    out += &format!(
        "epoch-0 losses agree bitwise: {}\n",
        losses[0].to_bits() == losses[1].to_bits()
    );
    out
}
