//! Dense linear algebra for small systems.
//!
//! Two call sites need to solve `A x = b` for `n ≤ 64`: the Theorem 4.1
//! minimum-variance weights (`A` is the scaled covariance matrix of the
//! per-node estimators) and validation tooling. Partial-pivot Gaussian
//! elimination is ample at this size — `O(n³)`, matching the complexity
//! the paper quotes for its checks.

use crate::error::CannikinError;

/// A dense square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Matrix { n, data: vec![0.0; n * n] }
    }

    /// Build from a row-major closure.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "matrix index out of range");
        self.data[i * self.n + j]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert!(i < self.n && j < self.n, "matrix index out of range");
        &mut self.data[i * self.n + j]
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`CannikinError::SingularSystem`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CannikinError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in col + 1..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-300 {
                return Err(CannikinError::SingularSystem("linalg::solve"));
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            let diag = a[col * n + col];
            for row in col + 1..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

/// Ordinary least squares fit of `y = slope·x + intercept`.
///
/// Returns `None` when fewer than two *distinct* x values are present (the
/// paper's condition for a usable compute-time model: at least two local
/// batch sizes must have been observed).
pub fn fit_line(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let weighted: Vec<(f64, f64, f64)> = points.iter().map(|&(x, y)| (x, y, 1.0)).collect();
    fit_line_weighted(&weighted)
}

/// Weighted least squares fit of `y = slope·x + intercept` over
/// `(x, y, weight)` triples.
///
/// Used by the analyzer with recency weights so that observations from
/// before a resource change (e.g. a co-located workload appearing or
/// leaving, §6) stop anchoring the model. Returns `None` when the
/// weighted x-spread is degenerate (effectively one batch size left).
pub fn fit_line_weighted(points: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    let live: Vec<&(f64, f64, f64)> = points.iter().filter(|p| p.2 > 0.0).collect();
    if live.len() < 2 {
        return None;
    }
    let sw: f64 = live.iter().map(|p| p.2).sum();
    let sx: f64 = live.iter().map(|p| p.2 * p.0).sum();
    let sy: f64 = live.iter().map(|p| p.2 * p.1).sum();
    let sxx: f64 = live.iter().map(|p| p.2 * p.0 * p.0).sum();
    let sxy: f64 = live.iter().map(|p| p.2 * p.0 * p.1).sum();
    let denom = sw * sxx - sx * sx;
    if denom.abs() < 1e-9 * sxx.max(1.0) {
        return None; // weighted x values effectively identical
    }
    let slope = (sw * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / sw;
    Some((slope, intercept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::from_fn(3, |i, j| if i == j { 1.0 } else { 0.0 });
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Matrix::from_fn(2, |i, j| [[2.0, 1.0], [1.0, 3.0]][i][j]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_fn(2, |i, j| [[0.0, 1.0], [1.0, 0.0]][i][j]);
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_fn(2, |i, _| if i == 0 { 1.0 } else { 2.0 });
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(CannikinError::SingularSystem(_))));
    }

    #[test]
    fn solve_random_roundtrip() {
        // Verify A·x == b for a random well-conditioned system.
        let n = 8;
        let a = Matrix::from_fn(n, |i, j| {
            let base = ((i * 31 + j * 17) % 13) as f64 / 13.0;
            if i == j {
                base + 5.0
            } else {
                base
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = a.solve(&b).unwrap();
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a.at(i, j) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-9, "row {i}: {acc} vs {}", b[i]);
        }
    }

    #[test]
    fn fit_line_exact() {
        let pts = vec![(1.0, 3.0), (2.0, 5.0), (4.0, 9.0)];
        let (slope, intercept) = fit_line(&pts).unwrap();
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_least_squares_on_noise() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                // Deterministic "noise" that averages out.
                let e = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 3.0 * x + 7.0 + e)
            })
            .collect();
        let (slope, intercept) = fit_line(&pts).unwrap();
        assert!((slope - 3.0).abs() < 1e-3);
        assert!((intercept - 7.0).abs() < 0.1);
    }

    #[test]
    fn fit_line_rejects_degenerate() {
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(fit_line(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(fit_line(&[]).is_none());
    }
}
