//! `cannikin-insight` — replay a recorded JSONL telemetry trace.
//!
//! ```text
//! cannikin-insight <trace.jsonl> [--only-rank N]
//! ```
//!
//! Loads the trace (as exported via `CANNIKIN_TELEMETRY=jsonl:/path` or
//! `telemetry::export::write_jsonl`), reconstructs per-node and per-plan
//! timelines, reruns the online detectors offline, and prints the
//! calibration + anomaly report. Exits 0 when the trace is healthy, 1 on
//! usage or parse errors, 2 when anomalies were found (so scripts can
//! gate on run health).

use cannikin_insight::{replay, InsightConfig};
use cannikin_telemetry::export::parse_jsonl;
use std::process::ExitCode;

fn run() -> Result<ExitCode, String> {
    let mut path = None;
    let mut config = InsightConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only-rank" => {
                let value = args.next().ok_or("--only-rank needs a value")?;
                let rank = value.parse::<u32>().map_err(|e| format!("bad --only-rank `{value}`: {e}"))?;
                config.only_rank = Some(rank);
            }
            "--help" | "-h" => {
                println!("usage: cannikin-insight <trace.jsonl> [--only-rank N]");
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("usage: cannikin-insight <trace.jsonl> [--only-rank N]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let records = parse_jsonl(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?;
    let report = replay::analyze(&records, config);
    print!("{}", report.render());
    if report.offline.is_empty() && report.online.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cannikin-insight: {message}");
            ExitCode::FAILURE
        }
    }
}
