//! Ground-truth timing coefficients.
//!
//! The paper's compute-time model (§3.2.1) is
//!
//! ```text
//! t_compute^i = a_i + P_i,   a_i = q_i·b_i + s_i,   P_i = k_i·b_i + m_i
//! ```
//!
//! The simulator *generates* timings from exactly this family, with
//! coefficients derived from GPU capability and job shape. Cannikin never
//! sees these coefficients — it must learn them from noisy per-batch
//! observations, and §5.3 of the paper measures how well the learned model
//! predicts the optimum that these ground-truth coefficients define.

use crate::cluster::{ClusterSpec, NodeSpec};
use crate::job::JobSpec;
use serde::{Deserialize, Serialize};

/// The four linear compute-time coefficients of one node for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeCoeffs {
    /// Per-sample coefficient of `a_i` (data loading + forward), s/sample.
    pub q: f64,
    /// Fixed part of `a_i` (parameter update + host overhead), s.
    pub s: f64,
    /// Per-sample coefficient of `P_i` (backward), s/sample.
    pub k: f64,
    /// Fixed part of `P_i`, s.
    pub m: f64,
}

impl ComputeCoeffs {
    /// `a_i(b) = q·b + s`.
    pub fn a(&self, b: f64) -> f64 {
        self.q * b + self.s
    }

    /// `P_i(b) = k·b + m`.
    pub fn p(&self, b: f64) -> f64 {
        self.k * b + self.m
    }

    /// Total compute time `t_compute(b) = a(b) + P(b)`.
    pub fn compute(&self, b: f64) -> f64 {
        self.a(b) + self.p(b)
    }

    /// `syncStart(b) = a(b) + γ·P(b)` — Eq. (4).
    pub fn sync_start(&self, b: f64, gamma: f64) -> f64 {
        self.a(b) + gamma * self.p(b)
    }
}

/// Derive a node's ground-truth coefficients for a job.
pub fn node_coefficients(node: &NodeSpec, job: &JobSpec) -> ComputeCoeffs {
    let flops = node.effective_flops() * job.utilization;
    // Forward slope (GPU) plus the CPU-side per-sample data-loading cost.
    // The two scale with *different* hardware axes (Tables 3–4 pair each
    // GPU with a different CPU), which is what makes equal-compute splits
    // and OptPerf splits genuinely different assignments.
    let q = job.fwd_flops_per_sample / flops + job.load_seconds_per_sample / node.cpu_factor;
    // Parameter update touches every weight a handful of times; host
    // overhead is CPU-bound.
    let s = job.params as f64 * 6.0 / flops + job.host_overhead / node.cpu_factor;
    // Backward slope.
    let k = job.fwd_flops_per_sample * job.bwd_to_fwd_ratio / flops;
    // Fixed backward cost: one kernel launch per bucket plus a small
    // parameter-proportional term.
    let m = job.num_buckets as f64 * 0.15e-3 + job.params as f64 * 1.0 / flops;
    ComputeCoeffs { q, s, k, m }
}

/// Ground-truth communication constants of the cluster for a job:
/// `(T_comm, T_o, T_u)` where `T_u = T_comm / num_buckets` is the
/// last-bucket time (buckets are evenly sized, §3.2.3) and
/// `T_o = T_comm − T_u`.
pub fn comm_times(cluster: &ClusterSpec, job: &JobSpec) -> (f64, f64, f64) {
    let t_comm = cluster.network.ring_all_reduce_time(job.gradient_bytes(), cluster.len());
    let t_u = t_comm / job.num_buckets as f64;
    (t_comm, t_comm - t_u, t_u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Gpu;
    use crate::cluster::NodeSpec;

    #[test]
    fn faster_gpu_has_smaller_slopes() {
        let job = JobSpec::resnet50_imagenet();
        let fast = node_coefficients(&NodeSpec::new("a", Gpu::A100), &job);
        let slow = node_coefficients(&NodeSpec::new("r", Gpu::Rtx6000), &job);
        assert!(fast.q < slow.q);
        assert!(fast.k < slow.k);
        // The GPU speed ratio carries through to the backward slope.
        assert!((slow.k / fast.k - 3.42).abs() < 0.05);
    }

    #[test]
    fn coefficients_are_positive_and_linear() {
        let job = JobSpec::bert_squad();
        let c = node_coefficients(&NodeSpec::new("v", Gpu::V100), &job);
        assert!(c.q > 0.0 && c.s > 0.0 && c.k > 0.0 && c.m > 0.0);
        // Linearity: compute(2b) - compute(b) == compute(3b) - compute(2b).
        let d1 = c.compute(20.0) - c.compute(10.0);
        let d2 = c.compute(30.0) - c.compute(20.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn backward_costs_twice_forward_slope() {
        // Subtract the CPU-side loading component from q to recover the
        // pure GPU forward slope, which backward doubles.
        let job = JobSpec::resnet18_cifar10();
        let c = node_coefficients(&NodeSpec::new("v", Gpu::V100), &job);
        let fwd = c.q - job.load_seconds_per_sample;
        assert!((c.k / fwd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sync_start_between_a_and_compute() {
        let job = JobSpec::resnet50_imagenet();
        let c = node_coefficients(&NodeSpec::new("v", Gpu::V100), &job);
        let b = 32.0;
        let ss = c.sync_start(b, job.gamma);
        assert!(ss > c.a(b) && ss < c.compute(b));
    }

    #[test]
    fn comm_split_sums_to_total() {
        let cluster = crate::cluster::ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("b", Gpu::V100), NodeSpec::new("c", Gpu::Rtx6000)],
        );
        let job = JobSpec::resnet50_imagenet();
        let (t_comm, t_o, t_u) = comm_times(&cluster, &job);
        assert!(t_comm > 0.0);
        assert!((t_o + t_u - t_comm).abs() < 1e-15);
        assert!((t_u * job.num_buckets as f64 - t_comm).abs() < 1e-12);
    }

    #[test]
    fn bigger_model_longer_comm() {
        let cluster = crate::cluster::ClusterSpec::new(
            "t",
            vec![NodeSpec::new("a", Gpu::A100), NodeSpec::new("b", Gpu::V100)],
        );
        let (small, _, _) = comm_times(&cluster, &JobSpec::neumf_movielens());
        let (big, _, _) = comm_times(&cluster, &JobSpec::bert_squad());
        assert!(big > small * 10.0);
    }

    #[test]
    fn contention_slows_node() {
        // GPU contention doubles the GPU-bound slope k; q also grows but
        // keeps its CPU-side loading term.
        let job = JobSpec::resnet18_cifar10();
        let full = node_coefficients(&NodeSpec::new("x", Gpu::Rtx6000), &job);
        let half = node_coefficients(&NodeSpec::new("x", Gpu::Rtx6000).with_contention(0.5), &job);
        assert!((half.k / full.k - 2.0).abs() < 1e-9);
        assert!(half.q > full.q);
    }

    #[test]
    fn slow_cpu_slows_loading_not_backward() {
        let job = JobSpec::resnet50_imagenet();
        let fast = node_coefficients(&NodeSpec::new("x", Gpu::V100).with_cpu_factor(1.0), &job);
        let slow = node_coefficients(&NodeSpec::new("x", Gpu::V100).with_cpu_factor(0.5), &job);
        assert_eq!(slow.k, fast.k, "backward is GPU-only");
        assert!(slow.q > fast.q, "loading slows with the CPU");
        assert!(slow.s > fast.s, "host overhead slows with the CPU");
    }
}
