//! Scenario-matrix experiment (the test PR): render the capability-tagged
//! evaluation matrix — every compatible (scenario, subject) cell under the
//! pinned seed — as the table the `figures scenarios` experiment prints.
//! The structured form lives in [`crate::scenarios`]; `BENCH_scenarios.json`
//! commits it and `scenariogate` diffs CI runs against it.

use crate::scenarios::{scenario_report, ScenarioBenchReport};
use crate::{fmt, row};

/// Rendered scenario matrix (the `figures scenarios` experiment).
pub fn scenarios() -> String {
    render_scenarios(&scenario_report())
}

/// Render an already-measured report (the `scenarios` binary reuses its
/// run instead of measuring twice).
pub fn render_scenarios(report: &ScenarioBenchReport) -> String {
    let mut out = format!(
        "Scenario matrix — {} compatible cells (seed {})\n\n",
        report.cells.len(),
        report.seed
    );
    let widths = [20, 16, 8, 11, 9, 7, 11, 13];
    out += &row(
        &[
            "scenario".into(),
            "subject".into(),
            "epochs".into(),
            "goodput".into(),
            "t_target".into(),
            "faults".into(),
            "recoveries".into(),
            "comm_bytes".into(),
        ],
        &widths,
    );
    out.push('\n');
    for cell in &report.cells {
        let metric = |name: &str| cell.metrics.get(name).copied();
        let show = |name: &str| metric(name).map(fmt).unwrap_or_else(|| "-".into());
        out += &row(
            &[
                cell.scenario.clone(),
                cell.subject.clone(),
                show("epochs"),
                show("goodput_eff_epochs_per_hour"),
                show("time_to_target_s"),
                show("faults"),
                show("recoveries"),
                show("comm_bytes"),
            ],
            &widths,
        );
        out.push('\n');
    }
    out += "\nadaptive vs static goodput (cannikin / strongest static subject):\n";
    for (scenario, ratio) in &report.ratios {
        out += &format!("  {scenario}: {ratio:.2}x\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::matrix;

    #[test]
    fn rendered_matrix_covers_every_cell_and_all_ratios_hold() {
        let text = scenarios();
        let cells = matrix();
        // Header + one line per cell before the ratio block.
        for (scenario, subject) in &cells {
            assert!(text.contains(scenario.name), "missing scenario {}", scenario.name);
            assert!(text.contains(subject.name), "missing subject {}", subject.name);
        }
        assert!(text.contains("adaptive vs static"));
    }
}
