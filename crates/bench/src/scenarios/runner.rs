//! Deterministic matrix runner: one seeded, wall-clock-free measurement
//! per compatible (scenario, subject) cell.
//!
//! Every cell runs under [`SCENARIO_SEED`] with its telemetry session
//! tagged `scenario/subject`, and reduces to a `BTreeMap<String, f64>` of
//! metrics that contain **no wall-clock time**: simulated seconds come
//! from the simulator's physics, byte counts from frame layouts, event
//! counts from the drained session. Two same-seed runs therefore emit
//! byte-identical JSON — `tests/scenarios.rs` holds that property, and CI
//! diffs a fresh run against the committed `BENCH_scenarios.json`.

use std::collections::BTreeMap;

use cannikin_baselines::{AdaptdlTrainer, DdpTrainer, HetPipeTrainer, LbBspTrainer};
use cannikin_core::engine::{
    CannikinTrainer, EpochRecord, NoiseModel, ParallelTrainer, TrainerConfig, TrainingSubject,
};
use cannikin_core::policy::PolicyKind;
use cannikin_collectives::TransportKind;
use cannikin_telemetry::{Json, Record, Session};
use cannikin_workloads::profiles;
use hetsim::catalog::Gpu;
use hetsim::cluster::{ClusterSpec, NodeSpec};
use hetsim::Simulator;
use minidnn::data::gaussian_blobs;
use minidnn::models::mlp_classifier;

use super::registry::{matrix, ScenarioKind, ScenarioSpec, SimSystem, SubjectKind, SubjectSpec};

/// Pinned seed of every cell in the scenario matrix.
pub const SCENARIO_SEED: u64 = 29;

/// Dataset size of the simulated workload (ResNet-18/CIFAR-10 slice).
const SIM_DATASET: usize = 6_400;
/// Base (and fixed-subject) total batch of the simulated workload.
const SIM_BASE_BATCH: u64 = 64;
/// Adaptive-subject batch ceiling.
const SIM_MAX_BATCH: u64 = 512;

/// One measured cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario id.
    pub scenario: String,
    /// Subject id.
    pub subject: String,
    /// Wall-clock-free metrics, name-sorted (stable JSON key order).
    pub metrics: BTreeMap<String, f64>,
}

/// The full matrix report — what `BENCH_scenarios.json` commits.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchReport {
    /// Seed every cell ran under.
    pub seed: u64,
    /// Every compatible cell, in matrix order.
    pub cells: Vec<CellResult>,
    /// Per-scenario `adaptive_vs_static` goodput ratios (Cannikin over
    /// the strongest static subject in the same scenario).
    pub ratios: BTreeMap<String, f64>,
}

fn sim_cluster() -> ClusterSpec {
    ClusterSpec::new(
        "scenarios",
        vec![
            NodeSpec::new("a100", Gpu::A100),
            NodeSpec::new("v100", Gpu::V100),
            NodeSpec::new("rtx", Gpu::Rtx6000),
        ],
    )
}

fn build_sim_subject(system: SimSystem, scenario: &ScenarioSpec) -> Box<dyn TrainingSubject> {
    let profile = profiles::cifar10_resnet18();
    let plan = match &scenario.kind {
        ScenarioKind::Sim { plan, .. } => plan.map(|build| build(SCENARIO_SEED)),
        ScenarioKind::Real { .. } => unreachable!("sim subject paired with a real scenario"),
    };
    let mut sim = Simulator::new(sim_cluster(), profile.job.clone(), SCENARIO_SEED);
    if let Some(plan) = plan {
        sim = sim.with_fault_plan(plan);
    }
    let noise: Box<dyn NoiseModel> = Box::new(profile.noise);
    match system {
        SimSystem::Cannikin | SimSystem::CannikinFixed => {
            let mut config = TrainerConfig::new(SIM_DATASET, SIM_BASE_BATCH, SIM_MAX_BATCH);
            config.adaptive_batch = system == SimSystem::Cannikin;
            let trainer = CannikinTrainer::builder()
                .simulator(sim)
                .noise_boxed(noise)
                .config(config)
                .build()
                .expect("valid scenario config");
            Box::new(trainer)
        }
        SimSystem::Policy(kind) => {
            let mut config = TrainerConfig::new(SIM_DATASET, SIM_BASE_BATCH, SIM_MAX_BATCH);
            // LB-BSP never moves the total, so declare the cell honestly
            // as a fixed-batch run; the other policies adapt.
            config.adaptive_batch = kind != PolicyKind::LbBsp;
            let trainer = CannikinTrainer::builder()
                .simulator(sim)
                .noise_boxed(noise)
                .config(config)
                .policy(kind)
                .build()
                .expect("valid scenario config");
            Box::new(trainer)
        }
        SimSystem::AdaptDl => Box::new(AdaptdlTrainer::new(sim, noise, SIM_DATASET, SIM_BASE_BATCH, SIM_MAX_BATCH)),
        SimSystem::Ddp => Box::new(DdpTrainer::new(sim, noise, SIM_DATASET, SIM_BASE_BATCH, SIM_BASE_BATCH)),
        SimSystem::LbBsp => Box::new(LbBspTrainer::new(sim, noise, SIM_DATASET, SIM_BASE_BATCH, SIM_BASE_BATCH)),
        SimSystem::HetPipe => Box::new(HetPipeTrainer::new(sim, noise, SIM_DATASET, SIM_BASE_BATCH, SIM_BASE_BATCH)),
    }
}

/// Reduce a sim run to wall-clock-free metrics. Simulated seconds are a
/// sum of `epoch_time` (pure physics) — never `cumulative_time`, which
/// for Cannikin includes real solver wall time and would break the
/// byte-identical contract.
fn sim_metrics(records: &[EpochRecord], target: f64, drained: &[Record]) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let sim_time: f64 = records.iter().map(|r| r.epoch_time).sum();
    let final_eff = records.last().map(|r| r.effective_epochs).unwrap_or(0.0);
    metrics.insert("epochs".into(), records.len() as f64);
    metrics.insert("steps".into(), records.iter().map(|r| r.steps as f64).sum());
    metrics.insert("sim_time_s".into(), sim_time);
    metrics.insert("final_effective_epochs".into(), final_eff);
    if sim_time > 0.0 {
        metrics.insert("goodput_eff_epochs_per_hour".into(), final_eff / sim_time * 3_600.0);
    }
    let mut elapsed = 0.0;
    for r in records {
        elapsed += r.epoch_time;
        if r.effective_epochs >= target {
            metrics.insert("time_to_target_s".into(), elapsed);
            break;
        }
    }
    metrics.insert("faults".into(), records.iter().map(|r| f64::from(r.faults)).sum());
    metrics.insert("recoveries".into(), records.iter().map(|r| f64::from(r.recoveries)).sum());
    metrics.insert("final_total_batch".into(), records.last().map(|r| r.total_batch as f64).unwrap_or(0.0));
    let count = |kind: &str| drained.iter().filter(|r| r.event.kind() == kind).count() as f64;
    metrics.insert("split_decisions".into(), count("split_decision"));
    metrics.insert("solver_invocations".into(), count("solver_invocation"));
    let comm_bytes: f64 = drained
        .iter()
        .filter_map(|r| match &r.event {
            cannikin_telemetry::Event::Counter(c) if c.name == "comm_bytes" => Some(c.value),
            _ => None,
        })
        .sum();
    metrics.insert("comm_bytes".into(), comm_bytes);
    metrics
}

fn run_sim_cell(scenario: &ScenarioSpec, subject: &SubjectSpec, system: SimSystem) -> BTreeMap<String, f64> {
    let (target, max_epochs) = match &scenario.kind {
        ScenarioKind::Sim { target, max_epochs, .. } => (*target, *max_epochs),
        ScenarioKind::Real { .. } => unreachable!("checked by the caller"),
    };
    let session = Session::start_tagged(format!("{}/{}", scenario.name, subject.name));
    let mut trainer = build_sim_subject(system, scenario);
    let records = trainer
        .drive_until(target, max_epochs)
        .unwrap_or_else(|e| panic!("{}/{} failed: {e}", scenario.name, subject.name));
    drop(trainer); // flush every worker's telemetry before draining
    let drained = session.drain();
    sim_metrics(&records, target, &drained)
}

fn run_real_cell(scenario: &ScenarioSpec, subject: &SubjectSpec, tcp: bool) -> BTreeMap<String, f64> {
    let (faults, epochs) = match &scenario.kind {
        ScenarioKind::Real { faults, epochs } => (*faults, *epochs),
        ScenarioKind::Sim { .. } => unreachable!("checked by the caller"),
    };
    let codec = match &subject.kind {
        SubjectKind::Real { codec, .. } => *codec,
        SubjectKind::Sim(_) => unreachable!("checked by the caller"),
    };
    let session = Session::start_tagged(format!("{}/{}", scenario.name, subject.name));
    let transport = if tcp { TransportKind::tcp() } else { TransportKind::InProcess };
    let mut builder = ParallelTrainer::builder()
        .dataset(gaussian_blobs(256, 10, 16, 11))
        .model(|seed| mlp_classifier(16, 32, 10, seed))
        .slowdowns(vec![1.0, 1.5])
        .batch_range(64, 64)
        .adaptive(false)
        .seed(SCENARIO_SEED)
        .transport(transport)
        .codec(codec)
        .overlap(false);
    if let Some(build) = faults {
        builder = builder.comm_faults(build(SCENARIO_SEED));
    }
    let mut trainer = builder.build().expect("valid scenario config");
    let reports: Vec<_> = (0..epochs)
        .map(|_| {
            trainer
                .run_epoch()
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}", scenario.name, subject.name))
        })
        .collect();
    drop(trainer);
    drop(session); // real cells take no timestamp-ordered data from the stream

    let mut metrics = BTreeMap::new();
    let last = reports.last().expect("at least one epoch");
    metrics.insert("epochs".into(), reports.len() as f64);
    metrics.insert("final_mean_loss".into(), last.mean_loss);
    metrics.insert("final_accuracy".into(), last.accuracy);
    metrics.insert("final_total_batch".into(), last.total_batch as f64);
    metrics.insert("comm_bytes".into(), reports.iter().map(|r| r.comm_bytes as f64).sum());
    metrics.insert("comm_retries".into(), reports.iter().map(|r| f64::from(r.comm_retries)).sum());
    metrics
}

/// Run one cell (the pair must be compatible) and reduce it to metrics.
///
/// # Panics
///
/// Panics if the pair crosses kinds or the subject's run fails — both are
/// registry bugs, not measurement outcomes.
pub fn run_cell(scenario: &ScenarioSpec, subject: &SubjectSpec) -> CellResult {
    let metrics = match (&scenario.kind, &subject.kind) {
        (ScenarioKind::Sim { .. }, SubjectKind::Sim(system)) => run_sim_cell(scenario, subject, *system),
        (ScenarioKind::Real { .. }, SubjectKind::Real { tcp, .. }) => run_real_cell(scenario, subject, *tcp),
        _ => panic!("{}/{}: scenario and subject kinds cross", scenario.name, subject.name),
    };
    CellResult { scenario: scenario.name.to_string(), subject: subject.name.to_string(), metrics }
}

/// The scenarios whose `adaptive_vs_static` ratio is gated: every
/// fault/churn condition of the sim matrix.
pub const RATIO_SCENARIOS: [&str; 5] =
    ["diurnal-contention", "straggler-onset", "flaky-network", "spot-preemption", "cluster-churn"];

fn goodput(cells: &[CellResult], scenario: &str, subject: &str) -> Option<f64> {
    cells
        .iter()
        .find(|c| c.scenario == scenario && c.subject == subject)
        .and_then(|c| c.metrics.get("goodput_eff_epochs_per_hour").copied())
}

/// Per-scenario goodput of Cannikin over the strongest *static* subject
/// present in the same scenario (DDP where it runs, otherwise the
/// fixed-batch Cannikin reference).
pub fn adaptive_vs_static(cells: &[CellResult]) -> BTreeMap<String, f64> {
    let mut ratios = BTreeMap::new();
    for scenario in RATIO_SCENARIOS {
        let adaptive = goodput(cells, scenario, "cannikin");
        let static_ref = goodput(cells, scenario, "ddp").or_else(|| goodput(cells, scenario, "cannikin-fixed"));
        if let (Some(a), Some(s)) = (adaptive, static_ref) {
            if s > 0.0 {
                ratios.insert(scenario.to_string(), a / s);
            }
        }
    }
    ratios
}

/// Run the whole compatible matrix under the pinned seed.
pub fn scenario_report() -> ScenarioBenchReport {
    let cells: Vec<CellResult> = matrix().iter().map(|(scenario, subject)| run_cell(scenario, subject)).collect();
    let ratios = adaptive_vs_static(&cells);
    ScenarioBenchReport { seed: SCENARIO_SEED, cells, ratios }
}

impl CellResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("subject".into(), Json::Str(self.subject.clone())),
            (
                "metrics".into(),
                Json::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), Json::num(*v))).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<CellResult, String> {
        let str_field = |name: &str| -> Result<String, String> {
            match json.get(name) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("cell is missing string `{name}`")),
            }
        };
        let scenario = str_field("scenario")?;
        let subject = str_field("subject")?;
        let mut metrics = BTreeMap::new();
        match json.get("metrics") {
            Some(Json::Obj(entries)) => {
                for (name, value) in entries {
                    let v = value
                        .as_f64()
                        .ok_or_else(|| format!("{scenario}/{subject}: metric `{name}` is not a number"))?;
                    metrics.insert(name.clone(), v);
                }
            }
            _ => return Err(format!("{scenario}/{subject}: missing `metrics` object")),
        }
        Ok(CellResult { scenario, subject, metrics })
    }
}

impl ScenarioBenchReport {
    /// Serialize for `BENCH_scenarios.json` (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("cannikin-scenarios-v1".into())),
            ("seed".into(), Json::num(self.seed as f64)),
            ("cells".into(), Json::Arr(self.cells.iter().map(CellResult::to_json).collect())),
            (
                "ratios".into(),
                Json::Obj(self.ratios.iter().map(|(k, v)| (k.clone(), Json::num(*v))).collect()),
            ),
        ])
    }

    /// Reconstruct from `BENCH_scenarios.json` (the `scenariogate`
    /// baseline side).
    pub fn from_json(json: &Json) -> Result<ScenarioBenchReport, String> {
        let seed = json
            .get("seed")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing numeric `seed`".to_string())? as u64;
        let cells = match json.get("cells") {
            Some(Json::Arr(items)) => {
                items.iter().map(CellResult::from_json).collect::<Result<Vec<_>, _>>()?
            }
            _ => return Err("missing `cells` array".into()),
        };
        let mut ratios = BTreeMap::new();
        if let Some(Json::Obj(entries)) = json.get("ratios") {
            for (name, value) in entries {
                let v = value.as_f64().ok_or_else(|| format!("ratio `{name}` is not a number"))?;
                ratios.insert(name.clone(), v);
            }
        }
        Ok(ScenarioBenchReport { seed, cells, ratios })
    }

    /// Look up a cell by ids.
    pub fn cell(&self, scenario: &str, subject: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.scenario == scenario && c.subject == subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::registry::{registry, subjects};

    #[test]
    fn report_json_round_trips() {
        let mut metrics = BTreeMap::new();
        metrics.insert("epochs".to_string(), 4.0);
        metrics.insert("goodput_eff_epochs_per_hour".to_string(), 123.456);
        let report = ScenarioBenchReport {
            seed: SCENARIO_SEED,
            cells: vec![CellResult {
                scenario: "calm-baseline".into(),
                subject: "cannikin".into(),
                metrics,
            }],
            ratios: BTreeMap::from([("spot-preemption".to_string(), 1.25)]),
        };
        let text = report.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("valid json");
        let back = ScenarioBenchReport::from_json(&parsed).expect("complete report");
        assert_eq!(back, report);
    }

    #[test]
    fn one_sim_cell_runs_and_reduces() {
        let scenario = registry().into_iter().find(|s| s.name == "spot-preemption").expect("registered");
        let subject = subjects().into_iter().find(|s| s.name == "cannikin-fixed").expect("registered");
        let cell = run_cell(&scenario, &subject);
        assert!(cell.metrics["final_effective_epochs"] >= 3.0, "reaches the target");
        assert!(cell.metrics["faults"] >= 1.0, "the preemption was observed");
        assert!(cell.metrics["recoveries"] >= 2.0, "evict + replan + join all count");
        assert!(cell.metrics["goodput_eff_epochs_per_hour"] > 0.0);
        assert!(cell.metrics.contains_key("time_to_target_s"));
    }

    fn cell(scenario_name: &str, subject_name: &str) -> CellResult {
        let scenario = registry().into_iter().find(|s| s.name == scenario_name).expect("registered");
        let subject = subjects().into_iter().find(|s| s.name == subject_name).expect("registered");
        run_cell(&scenario, &subject)
    }

    #[test]
    fn optperf_policy_subject_matches_the_inline_cannikin_subject() {
        // The policy-as-subject lens must be a pure re-labeling of the
        // paper's system: `policy-optperf` builds the same trainer as
        // `cannikin`, so every metric of every shared cell is identical.
        for scenario in ["calm-baseline", "straggler-onset"] {
            let inline = cell(scenario, "cannikin");
            let via_policy = cell(scenario, "policy-optperf");
            assert_eq!(inline.metrics, via_policy.metrics, "{scenario}: optperf-via-trait diverged");
        }
    }

    #[test]
    fn rl_policy_beats_even_split_under_faults() {
        // Acceptance floor for the bandit: on a heterogeneous cluster
        // under fault pressure, learning the batch while splitting with
        // the solver must out-goodput the homogeneous even split.
        for scenario in ["straggler-onset", "diurnal-contention"] {
            let rl = cell(scenario, "policy-rl").metrics["goodput_eff_epochs_per_hour"];
            let even = cell(scenario, "policy-even").metrics["goodput_eff_epochs_per_hour"];
            assert!(
                rl >= even,
                "{scenario}: policy-rl goodput {rl} should be >= policy-even {even}"
            );
        }
    }

    #[test]
    fn one_real_cell_runs_and_reduces() {
        let scenario = registry().into_iter().find(|s| s.name == "lan-clean").expect("registered");
        let subject = subjects().into_iter().find(|s| s.name == "parallel-inproc").expect("registered");
        let cell = run_cell(&scenario, &subject);
        assert_eq!(cell.metrics["epochs"], 1.0);
        assert!(cell.metrics["comm_bytes"] > 0.0);
        assert!(cell.metrics["final_mean_loss"].is_finite());
    }
}
