//! Thread-local scratch-buffer arena.
//!
//! The hot training loop needs many short-lived `f32` buffers per step:
//! packed matmul panels, im2col columns, gradient staging. Allocating them
//! fresh every call puts the allocator on the critical path of every batch,
//! so this arena keeps a small per-thread free list of `Vec<f32>` buffers
//! and hands them back out on the next [`take`]. Buffers return to the
//! arena automatically when the [`ScratchBuf`] guard drops — including from
//! a different thread than the one that took them (they simply join that
//! thread's free list).
//!
//! [`take`] returns buffers with **unspecified contents** (typically stale
//! data from their previous use): callers must either fully overwrite the
//! buffer or use [`take_zeroed`]. This is what makes reuse genuinely free —
//! no memset is paid when the caller overwrites everything anyway, as the
//! im2col lowering and the panel packers do.

use std::cell::RefCell;

/// Free-list capacity per thread; excess buffers are simply freed.
const MAX_CACHED: usize = 16;

#[derive(Default)]
struct Arena {
    free: Vec<Vec<f32>>,
    allocations: u64,
    reuses: u64,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

/// Counters describing the current thread's arena traffic.
///
/// After a warm-up step, a steady-state training loop should show
/// `allocations` flat and `reuses` growing — the property the conv and
/// kernel tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers that had to be allocated or grown.
    pub allocations: u64,
    /// Buffers served from the free list without growing.
    pub reuses: u64,
}

/// Snapshot the current thread's arena counters.
pub fn stats() -> ScratchStats {
    ARENA.with(|a| {
        let a = a.borrow();
        ScratchStats { allocations: a.allocations, reuses: a.reuses }
    })
}

/// A scratch buffer on loan from the arena; returns on drop.
///
/// Dereferences to `[f32]` of exactly the requested length.
#[derive(Debug, Default)]
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl ScratchBuf {
    /// The buffer contents as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// The buffer contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl std::ops::Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        // try_with: the thread may be tearing down its TLS — then just free.
        let _ = ARENA.try_with(|a| {
            let mut a = a.borrow_mut();
            if a.free.len() < MAX_CACHED {
                a.free.push(buf);
            }
        });
    }
}

/// Borrow a buffer of `len` floats with **unspecified contents**.
///
/// Prefers the smallest cached buffer whose capacity already fits `len`
/// (best fit), falling back to growing the largest one.
pub fn take(len: usize) -> ScratchBuf {
    let mut buf = ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let mut best: Option<usize> = None;
        for (i, b) in a.free.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < a.free[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                a.reuses += 1;
                a.free.swap_remove(i)
            }
            None => {
                a.allocations += 1;
                // Growing a cached buffer still reallocs; take the largest
                // so the grow is as cheap as possible.
                let mut largest: Option<usize> = None;
                for (i, b) in a.free.iter().enumerate() {
                    if largest.is_none_or(|j| b.capacity() > a.free[j].capacity()) {
                        largest = Some(i);
                    }
                }
                largest.map(|i| a.free.swap_remove(i)).unwrap_or_default()
            }
        }
    });
    // Adjust length without touching retained (stale) contents; only newly
    // grown elements are zero-filled, as safe Rust requires.
    if buf.len() < len {
        buf.resize(len, 0.0);
    } else {
        buf.truncate(len);
    }
    ScratchBuf { buf }
}

/// Borrow a buffer of `len` floats, zero-filled.
pub fn take_zeroed(len: usize) -> ScratchBuf {
    let mut b = take(len);
    b.as_mut_slice().fill(0.0);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_has_requested_length() {
        for len in [0usize, 1, 7, 1024] {
            assert_eq!(take(len).len(), len);
        }
    }

    #[test]
    fn take_zeroed_is_zero() {
        {
            let mut b = take(64);
            b.as_mut_slice().fill(3.5);
        }
        let b = take_zeroed(64);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn buffers_are_reused_across_takes() {
        let warm = take(256);
        let ptr = warm.as_slice().as_ptr();
        drop(warm);
        let before = stats();
        let again = take(256);
        let after = stats();
        assert_eq!(again.as_slice().as_ptr(), ptr, "same allocation should come back");
        assert_eq!(after.allocations, before.allocations);
        assert_eq!(after.reuses, before.reuses + 1);
    }

    #[test]
    fn shrinking_take_keeps_capacity() {
        drop(take(1000));
        let before = stats();
        let small = take(10);
        assert_eq!(small.len(), 10);
        assert_eq!(stats().allocations, before.allocations);
    }

    #[test]
    fn concurrent_takes_get_distinct_buffers() {
        let a = take(128);
        let b = take(128);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
