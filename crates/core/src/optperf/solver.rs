//! The boundary-search OptPerf solver.

use super::{NodePerf, SolverInput};
use crate::error::CannikinError;
use cannikin_telemetry::{self as telemetry, Event, SolverInvocation};
use serde::{Deserialize, Serialize};

/// Which resource limits a node at the solved operating point (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// `(1−γ)·P_i ≥ T_o`: gradient computation hides all overlappable
    /// communication; the node's batch time is `t_compute + T_u` (Eq. 5).
    Compute,
    /// `(1−γ)·P_i < T_o`: the bucket-synchronization chain is the critical
    /// path; the node's batch time is `syncStart + T_comm` (Eq. 6).
    Communication,
}

/// The solver's answer for one total batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Integer local batch per node, summing to the requested total.
    pub local_batches: Vec<u64>,
    /// Predicted batch processing time of `local_batches`, s — this is
    /// *OptPerf* for the requested total batch size.
    pub opt_perf: f64,
    /// The continuous-relaxation optimum (before integer rounding), s.
    pub continuous_opt: f64,
    /// Bottleneck classification of every node at the solved point.
    pub pattern: Vec<Bottleneck>,
    /// Number of compute-bottleneck nodes in the solver's transition
    /// ordering (the boundary `C`; `C = n` ⇔ Check 1, `C = 0` ⇔ Check 2).
    pub boundary: usize,
    /// Linear-system solves performed (overhead accounting for Table 6).
    pub solves: usize,
}

impl Plan {
    /// Local batch ratios `r_i = b_i / B` (Eq. 9 weights).
    pub fn ratios(&self) -> Vec<f64> {
        let total: u64 = self.local_batches.iter().sum();
        self.local_batches.iter().map(|&b| b as f64 / total as f64).collect()
    }
}

/// Predicted synchronized batch time of an arbitrary split under the given
/// models — Eq. (7) evaluated in closed form.
///
/// # Panics
///
/// Panics if `local.len()` differs from the node count.
pub fn predict_batch_time(input: &SolverInput, local: &[u64]) -> f64 {
    assert_eq!(local.len(), input.nodes.len(), "one local batch per node");
    let t_comm = input.t_comm();
    let mut t = 0.0f64;
    for (node, &b) in input.nodes.iter().zip(local) {
        let b = b as f64;
        t = t
            .max(node.compute(b) + input.t_u)
            .max(node.sync_start(b, input.gamma) + t_comm);
    }
    t
}

/// The straggler's pure compute time for a split — the per-micro-step
/// cost of gradient accumulation, where no all-reduce happens.
///
/// # Panics
///
/// Panics if `local.len()` differs from the node count.
pub fn compute_span(input: &SolverInput, local: &[u64]) -> f64 {
    assert_eq!(local.len(), input.nodes.len(), "one local batch per node");
    input
        .nodes
        .iter()
        .zip(local)
        .map(|(node, &b)| node.compute(b as f64))
        .fold(0.0, f64::max)
}

/// The OptPerf solver with warm-started boundary search.
///
/// Construct once per (cluster, job) model snapshot; call
/// [`OptPerfSolver::solve`] per candidate total batch size. Successive
/// calls reuse the previous boundary as the search start (§4.5).
#[derive(Debug, Clone)]
pub struct OptPerfSolver {
    input: SolverInput,
    /// Node indices sorted ascending by transition threshold μ*.
    order: Vec<usize>,
    warm_boundary: Option<usize>,
}

impl OptPerfSolver {
    /// Create a solver for the given models.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty, γ is outside `(0, 1)`, or any slope
    /// is non-positive (a physically meaningless model).
    pub fn new(input: SolverInput) -> Self {
        assert!(!input.is_empty(), "solver needs at least one node");
        assert!(input.gamma > 0.0 && input.gamma < 1.0, "gamma must be in (0, 1)");
        for (i, n) in input.nodes.iter().enumerate() {
            assert!(n.q > 0.0 && n.k > 0.0, "node {i} has non-positive slope");
        }
        let mut order: Vec<usize> = (0..input.len()).collect();
        let thresholds_by_node: Vec<f64> = input.nodes.iter().map(|n| mu_star(n, input.gamma, input.t_o)).collect();
        order.sort_by(|&a, &b| thresholds_by_node[a].total_cmp(&thresholds_by_node[b]));
        OptPerfSolver { input, order, warm_boundary: None }
    }

    /// The models the solver was built from.
    pub fn input(&self) -> &SolverInput {
        &self.input
    }

    /// Seed the boundary search (used when replaying a cached overlap
    /// state from `OptPerf_init`, §4.5).
    pub fn set_warm_boundary(&mut self, boundary: usize) {
        self.warm_boundary = Some(boundary.min(self.input.len()));
    }

    /// Solve for the optimal split of `total` samples.
    ///
    /// # Errors
    ///
    /// Returns [`CannikinError::InfeasibleBatch`] when `total` is smaller
    /// than the node count (every node must train at least one sample) or
    /// exceeds the sum of the per-node memory caps.
    pub fn solve(&mut self, total: u64) -> Result<Plan, CannikinError> {
        let invocation_started = std::time::Instant::now();
        let n = self.input.len();
        if total < n as u64 {
            return Err(CannikinError::InfeasibleBatch {
                total,
                reason: format!("cluster has {n} nodes and every node needs at least one sample"),
            });
        }
        let cap_sum: u64 = self.input.nodes.iter().map(|nd| nd.max_batch.unwrap_or(u64::MAX / 1024)).sum();
        if total > cap_sum {
            return Err(CannikinError::InfeasibleBatch {
                total,
                reason: format!("memory caps admit at most {cap_sum} samples"),
            });
        }

        let mut solves = 0usize;

        // Warm-started / binary boundary search over C ∈ [0, n].
        let mut chosen: Option<(usize, ContinuousSolution)> = None;
        let mut lo = 0usize;
        let mut hi = n;
        let mut first = self.warm_boundary;
        for _ in 0..=n + 2 {
            if lo > hi {
                break;
            }
            let c = match first.take() {
                Some(w) if (lo..=hi).contains(&w) => w,
                _ => (lo + hi) / 2,
            };
            let sol = self.solve_continuous(total, c);
            solves += 1;
            match self.classify_consistency(c, &sol) {
                Consistency::Ok => {
                    chosen = Some((c, sol));
                    break;
                }
                Consistency::NeedMoreCompute => lo = c + 1,
                Consistency::NeedLessCompute => {
                    if c == 0 {
                        break;
                    }
                    hi = c - 1;
                }
            }
        }

        // Fallback: exhaustive scan, keeping the best predicted plan even
        // when no boundary is perfectly self-consistent (possible when
        // pinning at caps or the 1-sample floor distorts the system).
        let (_search_boundary, solution) = match chosen {
            Some(x) => x,
            None => {
                let mut best: Option<(usize, ContinuousSolution, f64)> = None;
                for c in 0..=n {
                    let sol = self.solve_continuous(total, c);
                    solves += 1;
                    let rounded = self.round(total, &sol);
                    let t = predict_batch_time(&self.input, &rounded);
                    if best.as_ref().is_none_or(|(_, _, bt)| t < *bt) {
                        best = Some((c, sol, t));
                    }
                }
                let (c, sol, _) = best.expect("n+1 candidate boundaries evaluated");
                (c, sol)
            }
        };

        let local_batches = self.round(total, &solution);
        let opt_perf = predict_batch_time(&self.input, &local_batches);
        let pattern = self.classify_plan(&local_batches);
        // Report (and warm-start from) the realized compute-node count:
        // when every node was pinned by the 1-sample floor or a memory
        // cap, the search boundary `boundary` is arbitrary, but the
        // realized pattern is not.
        let boundary = pattern.iter().filter(|p| **p == Bottleneck::Compute).count();
        self.warm_boundary = Some(boundary);
        if telemetry::enabled() {
            telemetry::emit(Event::SolverInvocation(SolverInvocation {
                wall_ns: invocation_started.elapsed().as_nanos() as u64,
                total,
                candidates: 1,
                solves: solves as u32,
                boundary: boundary as u32,
            }));
        }
        Ok(Plan {
            continuous_opt: solution.makespan,
            local_batches,
            opt_perf,
            pattern,
            boundary,
            solves,
        })
    }

    /// Solve the equal-finish linear system for boundary `c` with the
    /// 1-sample floor and memory caps enforced by an active-set loop.
    fn solve_continuous(&self, total: u64, c: usize) -> ContinuousSolution {
        let n = self.input.len();
        let gamma = self.input.gamma;
        let t_o = self.input.t_o;
        // slope/offset of each node's finish-time expression μ = slope·b + offset.
        let mut slope = vec![0.0f64; n];
        let mut offset = vec![0.0f64; n];
        for (pos, &i) in self.order.iter().enumerate() {
            let node = &self.input.nodes[i];
            if pos < c {
                slope[i] = node.compute_slope();
                offset[i] = node.compute_intercept();
            } else {
                slope[i] = node.sync_slope(gamma);
                offset[i] = node.sync_intercept(gamma) + t_o;
            }
        }
        let caps: Vec<f64> = self.input.nodes.iter().map(|nd| nd.max_batch.map_or(f64::INFINITY, |m| m as f64)).collect();
        let mut pinned: Vec<Option<f64>> = vec![None; n];
        let mut b = vec![0.0f64; n];
        let mut mu = 0.0f64;
        for _round in 0..=n {
            let budget = total as f64 - pinned.iter().flatten().sum::<f64>();
            let free: Vec<usize> = (0..n).filter(|&i| pinned[i].is_none()).collect();
            if free.is_empty() {
                break;
            }
            let inv_sum: f64 = free.iter().map(|&i| 1.0 / slope[i]).sum();
            let rhs: f64 = free.iter().map(|&i| offset[i] / slope[i]).sum();
            mu = (budget + rhs) / inv_sum;
            for &i in &free {
                b[i] = (mu - offset[i]) / slope[i];
            }
            // Pin violations and re-solve.
            let mut changed = false;
            for &i in &free {
                if b[i] < 1.0 {
                    pinned[i] = Some(1.0f64.min(caps[i]));
                    changed = true;
                } else if b[i] > caps[i] {
                    pinned[i] = Some(caps[i]);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for i in 0..n {
            if let Some(p) = pinned[i] {
                b[i] = p;
            }
        }
        // Makespan of the continuous solution: free nodes finish at μ, but
        // pinned nodes may finish later.
        let mut makespan = self.input.t_u + mu.max(0.0);
        for i in 0..n {
            let node = &self.input.nodes[i];
            makespan = makespan
                .max(node.compute(b[i]) + self.input.t_u)
                .max(node.sync_start(b[i], gamma) + self.input.t_comm());
        }
        ContinuousSolution { b, makespan }
    }

    /// Check whether the hypothesis "first `c` sorted nodes are
    /// compute-bottleneck" agrees with the solved batch sizes.
    ///
    /// Pinned nodes (memory cap or the one-sample floor) are classified by
    /// their *actual* overlap state at the pinned size: a node hypothesized
    /// communication-bound but pinned at a cap where it is compute-bound
    /// would otherwise silently anchor a wrong boundary (its real finish
    /// time exceeds the equalized makespan μ, which the solver would never
    /// notice — it was a genuine bug caught by the Appendix A tests).
    fn classify_consistency(&self, c: usize, sol: &ContinuousSolution) -> Consistency {
        let gamma = self.input.gamma;
        let t_o = self.input.t_o;
        for (pos, &i) in self.order.iter().enumerate() {
            let overlap_headroom = (1.0 - gamma) * self.input.nodes[i].p(sol.b[i]);
            let is_compute = overlap_headroom >= t_o - 1e-12;
            if pos < c && !is_compute {
                return Consistency::NeedLessCompute;
            }
            if pos >= c && is_compute {
                return Consistency::NeedMoreCompute;
            }
        }
        Consistency::Ok
    }

    /// Classify every node of an integer plan by its actual overlap state.
    fn classify_plan(&self, local: &[u64]) -> Vec<Bottleneck> {
        local
            .iter()
            .zip(&self.input.nodes)
            .map(|(&b, node)| {
                if (1.0 - self.input.gamma) * node.p(b as f64) >= self.input.t_o {
                    Bottleneck::Compute
                } else {
                    Bottleneck::Communication
                }
            })
            .collect()
    }

    /// Largest-remainder rounding of the continuous split to integers that
    /// sum to `total`, respecting the 1-sample floor and memory caps.
    fn round(&self, total: u64, sol: &ContinuousSolution) -> Vec<u64> {
        let n = self.input.len();
        let caps: Vec<u64> = self.input.nodes.iter().map(|nd| nd.max_batch.unwrap_or(u64::MAX / 1024)).collect();
        let mut out: Vec<u64> = (0..n).map(|i| (sol.b[i].floor() as u64).clamp(1, caps[i])).collect();
        let mut assigned: u64 = out.iter().sum();
        // Order nodes by descending fractional part for the remainder.
        let mut frac_order: Vec<usize> = (0..n).collect();
        frac_order.sort_by(|&a, &b| {
            let fa = sol.b[a] - sol.b[a].floor();
            let fb = sol.b[b] - sol.b[b].floor();
            fb.total_cmp(&fa)
        });
        let mut cursor = 0;
        while assigned < total {
            let i = frac_order[cursor % n];
            if out[i] < caps[i] {
                out[i] += 1;
                assigned += 1;
            }
            cursor += 1;
            if cursor > 4 * n * (total as usize + 1) {
                break; // caps saturated; feasibility was pre-checked
            }
        }
        while assigned > total {
            // Floors pushed us over (tiny totals): shave from the largest.
            let i = (0..n).max_by(|&a, &b| out[a].cmp(&out[b])).expect("non-empty");
            if out[i] > 1 {
                out[i] -= 1;
                assigned -= 1;
            } else {
                break;
            }
        }
        out
    }
}

/// Transition threshold μ*: the equal-finish makespan at which node `i`
/// becomes compute-bottleneck. Below it the node is communication-bound.
fn mu_star(node: &NodePerf, gamma: f64, t_o: f64) -> f64 {
    // (1−γ)(k·b + m) = T_o  ⇒  b_crit
    let b_crit = (t_o / (1.0 - gamma) - node.m) / node.k;
    if b_crit <= 0.0 {
        return f64::NEG_INFINITY; // compute-bound at any batch size
    }
    node.compute(b_crit)
}

#[derive(Debug, Clone)]
struct ContinuousSolution {
    b: Vec<f64>,
    makespan: f64,
}

enum Consistency {
    Ok,
    NeedMoreCompute,
    NeedLessCompute,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::catalog::Gpu;
    use hetsim::cluster::{ClusterSpec, NodeSpec};
    use hetsim::job::JobSpec;
    use hetsim::Simulator;

    fn cluster3() -> ClusterSpec {
        ClusterSpec::new(
            "t",
            vec![
                NodeSpec::new("a100", Gpu::A100),
                NodeSpec::new("v100", Gpu::V100),
                NodeSpec::new("rtx", Gpu::Rtx6000),
            ],
        )
    }

    fn solver_for(job: JobSpec) -> OptPerfSolver {
        OptPerfSolver::new(SolverInput::from_ground_truth(&cluster3(), &job))
    }

    #[test]
    fn split_sums_to_total_and_favors_fast_nodes() {
        let mut s = solver_for(JobSpec::resnet50_imagenet());
        let plan = s.solve(128).unwrap();
        assert_eq!(plan.local_batches.iter().sum::<u64>(), 128);
        assert!(plan.local_batches[0] > plan.local_batches[1]);
        assert!(plan.local_batches[1] > plan.local_batches[2]);
    }

    #[test]
    fn beats_even_split() {
        let mut s = solver_for(JobSpec::resnet50_imagenet());
        let plan = s.solve(96).unwrap();
        let even = predict_batch_time(s.input(), &[32, 32, 32]);
        assert!(plan.opt_perf < even, "opt {} vs even {even}", plan.opt_perf);
    }

    #[test]
    fn optimal_among_exhaustive_integer_splits() {
        // Brute force all integer splits for a small total and check the
        // solver is within rounding distance of the best.
        for job in [JobSpec::resnet50_imagenet(), JobSpec::bert_squad(), JobSpec::neumf_movielens()] {
            let mut s = solver_for(job.clone());
            let total = 48u64;
            let plan = s.solve(total).unwrap();
            let mut best = f64::INFINITY;
            for b0 in 1..total - 1 {
                for b1 in 1..total - b0 {
                    let b2 = total - b0 - b1;
                    if b2 < 1 {
                        continue;
                    }
                    best = best.min(predict_batch_time(s.input(), &[b0, b1, b2]));
                }
            }
            assert!(
                plan.opt_perf <= best * 1.02 + 1e-6,
                "{}: solver {} vs brute force {best}",
                job.name,
                plan.opt_perf
            );
            // Continuous bound is a true lower bound (up to fp noise).
            assert!(plan.continuous_opt <= best * (1.0 + 1e-9));
        }
    }

    #[test]
    fn plan_matches_simulator_ground_truth() {
        // The solver's predicted time must equal the event simulator's
        // noise-free batch time for the same split.
        let job = JobSpec::resnet50_imagenet();
        let sim = Simulator::new(cluster3(), job.clone(), 0).with_noise(0.0, 0.0);
        let mut s = solver_for(job);
        for total in [24u64, 64, 256, 1024] {
            let plan = s.solve(total).unwrap();
            let simulated = sim.ideal_batch_time(&plan.local_batches);
            assert!(
                (plan.opt_perf - simulated).abs() / simulated < 1e-9,
                "total {total}: predicted {} vs simulated {simulated}",
                plan.opt_perf
            );
        }
    }

    #[test]
    fn large_batches_become_all_compute() {
        let mut s = solver_for(JobSpec::resnet50_imagenet());
        let plan = s.solve(2000).unwrap();
        assert!(plan.pattern.iter().all(|p| *p == Bottleneck::Compute), "{:?}", plan.pattern);
        assert_eq!(plan.boundary, 3);
    }

    #[test]
    fn tiny_batches_become_all_communication() {
        // BERT's 440 MB gradient makes communication dominate at batch 3.
        let mut s = solver_for(JobSpec::bert_squad());
        let plan = s.solve(3).unwrap();
        assert!(plan.pattern.iter().all(|p| *p == Bottleneck::Communication), "{:?}", plan.pattern);
        assert_eq!(plan.boundary, 0);
    }

    #[test]
    fn mixed_bottleneck_exists_between_extremes() {
        // Sweep totals; somewhere between all-comm and all-compute there
        // must be a mixed state for a heterogeneous cluster.
        let mut s = solver_for(JobSpec::resnet50_imagenet());
        let mut saw_mixed = false;
        for total in (3..600).step_by(3) {
            let plan = s.solve(total).unwrap();
            let computes = plan.pattern.iter().filter(|p| **p == Bottleneck::Compute).count();
            if computes > 0 && computes < 3 {
                saw_mixed = true;
                break;
            }
        }
        assert!(saw_mixed, "no mixed-bottleneck state found in sweep");
    }

    #[test]
    fn warm_start_reduces_solves() {
        let mut cold = solver_for(JobSpec::resnet50_imagenet());
        let plan_a = cold.solve(300).unwrap();
        // Re-solving a nearby batch size with the warm boundary should use
        // no more solves than the cold solve.
        let plan_b = cold.solve(310).unwrap();
        assert!(plan_b.solves <= plan_a.solves, "warm {} vs cold {}", plan_b.solves, plan_a.solves);
        // And typically exactly one verification solve.
        assert!(plan_b.solves <= 2);
    }

    #[test]
    fn infeasible_batches_rejected() {
        let mut s = solver_for(JobSpec::resnet50_imagenet());
        assert!(matches!(s.solve(2), Err(CannikinError::InfeasibleBatch { .. })));
        // Sum of memory caps bounds the total.
        let caps: u64 = s.input().nodes.iter().map(|n| n.max_batch.unwrap()).sum();
        assert!(matches!(s.solve(caps + 1), Err(CannikinError::InfeasibleBatch { .. })));
    }

    #[test]
    fn memory_caps_respected() {
        let job = JobSpec::deepspeech2_librispeech();
        let mut input = SolverInput::from_ground_truth(&cluster3(), &job);
        // Artificially tighten node 0's cap.
        input.nodes[0].max_batch = Some(4);
        let mut s = OptPerfSolver::new(input);
        let plan = s.solve(40).unwrap();
        assert!(plan.local_batches[0] <= 4);
        assert_eq!(plan.local_batches.iter().sum::<u64>(), 40);
    }

    #[test]
    fn homogeneous_cluster_splits_evenly() {
        let cluster = ClusterSpec::new(
            "h",
            vec![
                NodeSpec::new("a", Gpu::V100),
                NodeSpec::new("b", Gpu::V100),
                NodeSpec::new("c", Gpu::V100),
                NodeSpec::new("d", Gpu::V100),
            ],
        );
        let mut s = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &JobSpec::resnet50_imagenet()));
        let plan = s.solve(128).unwrap();
        assert_eq!(plan.local_batches, vec![32, 32, 32, 32]);
    }

    #[test]
    fn single_node_gets_everything() {
        let cluster = ClusterSpec::new("one", vec![NodeSpec::new("a", Gpu::A100)]);
        let mut s = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &JobSpec::resnet18_cifar10()));
        let plan = s.solve(64).unwrap();
        assert_eq!(plan.local_batches, vec![64]);
    }

    #[test]
    fn ratios_sum_to_one() {
        let mut s = solver_for(JobSpec::resnet18_cifar10());
        let plan = s.solve(100).unwrap();
        let sum: f64 = plan.ratios().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sixteen_node_cluster_b_solves_fast_and_correctly() {
        // Paper-scale: 4×A100 + 4×V100 + 8×RTX6000.
        let mut nodes = Vec::new();
        for i in 0..4 {
            nodes.push(NodeSpec::new(format!("a100-{i}"), Gpu::A100));
        }
        for i in 0..4 {
            nodes.push(NodeSpec::new(format!("v100-{i}"), Gpu::V100));
        }
        for i in 0..8 {
            nodes.push(NodeSpec::new(format!("rtx-{i}"), Gpu::Rtx6000));
        }
        let cluster = ClusterSpec::new("B", nodes);
        let job = JobSpec::resnet50_imagenet();
        let sim = Simulator::new(cluster.clone(), job.clone(), 0).with_noise(0.0, 0.0);
        let mut s = OptPerfSolver::new(SolverInput::from_ground_truth(&cluster, &job));
        let plan = s.solve(1024).unwrap();
        assert_eq!(plan.local_batches.iter().sum::<u64>(), 1024);
        // Same-type nodes must receive near-identical batches.
        for i in 1..4 {
            assert!(plan.local_batches[i].abs_diff(plan.local_batches[0]) <= 1);
        }
        // Random splits cannot beat the plan.
        let sim_time = sim.ideal_batch_time(&plan.local_batches);
        assert!((sim_time - plan.opt_perf).abs() / sim_time < 1e-9);
        let even = sim.ideal_batch_time(&[64; 16]);
        assert!(plan.opt_perf < even);
    }
}
