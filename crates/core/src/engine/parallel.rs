//! Functional data-parallel training with real gradients.
//!
//! [`ParallelTrainer`] runs one `minidnn` model replica per OS thread,
//! exchanges gradients with the real bucketed ring all-reduce of
//! `cannikin-collectives`, aggregates them with the Eq. (9) batch-ratio
//! weights, and estimates the gradient noise scale live with Eq. (10) +
//! Theorem 4.1. CPU threads are equally fast, so hardware heterogeneity is
//! emulated with per-node *slowdown factors* (a slow node sleeps in
//! proportion to its measured compute time — the same observable a slower
//! GPU would produce).
//!
//! Because the functional path synchronizes the whole gradient after
//! backpropagation (no bucket overlap), its timing model is the
//! all-compute-bottleneck special case: `T = max_i t_compute^i + T_comm`.
//! The analyzer is therefore fed `T_o = 0, T_u = T_comm`, under which the
//! OptPerf solver's Check 1 (equal compute times) is exact.

use super::loader::HeteroDataLoader;
use crate::gns::{estimate_gns, Aggregation, GnsEstimate, GnsTracker, GradientSample};
use crate::optperf::{bootstrap_split, ensure_distinct_split, even_split, OptPerfSolver};
use crate::perf::{Analyzer, MeasurementAggregation};

use cannikin_collectives::CommGroup;
use cannikin_insight::{HealthReport, Monitor};
use cannikin_telemetry::{self as telemetry, AnomalyKind, Event, SplitDecision, SplitSource, StepTiming};
use hetsim::trace::{BatchTrace, NodeObservation};
use minidnn::data::ClassificationDataset;
use minidnn::layers::{assign_grads_from, flatten_grads_into, flatten_values, zero_grads, Layer, Sequential};
use minidnn::loss::{Loss, SoftmaxCrossEntropy};
use minidnn::lr::LrScaler;
use minidnn::optim::{Optimizer, Sgd};

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a functional training run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Per-node slowdown factors (1.0 = full speed); the length sets the
    /// node count.
    pub slowdowns: Vec<f64>,
    /// Reference/initial total batch size B₀.
    pub base_batch: u64,
    /// Upper bound of the adaptive batch range.
    pub max_batch: u64,
    /// Whether the total batch size adapts via goodput.
    pub adaptive: bool,
    /// Base learning rate at B₀.
    pub base_lr: f64,
    /// Learning-rate scaling rule for grown batches.
    pub lr_scaler: LrScaler,
    /// RNG seed (model init and shuffling).
    pub seed: u64,
}

impl ParallelConfig {
    /// A 3-node heterogeneous default: one full-speed node, one at 2x
    /// slowdown, one at 4x — cluster-A-like ratios.
    pub fn hetero_default(base_batch: u64) -> Self {
        ParallelConfig {
            slowdowns: vec![1.0, 2.0, 4.0],
            base_batch,
            max_batch: base_batch * 8,
            adaptive: true,
            base_lr: 0.1,
            lr_scaler: LrScaler::AdaScale,
            seed: 17,
        }
    }
}

/// Per-epoch outcome of the functional trainer.
#[derive(Debug, Clone)]
pub struct ParallelEpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Total batch size used.
    pub total_batch: u64,
    /// Per-node local batches.
    pub local_batches: Vec<u64>,
    /// Measured wall time of the epoch, s (including emulated slowdowns).
    pub epoch_time: f64,
    /// Mean training loss across steps.
    pub mean_loss: f64,
    /// Training accuracy measured after the epoch (rank 0 replica).
    pub accuracy: f64,
    /// Smoothed gradient noise scale after the epoch, if estimable.
    pub noise_scale: Option<f64>,
    /// Whether the learned performance model produced the split.
    pub used_model: bool,
}

/// Functional Cannikin trainer over OS threads.
pub struct ParallelTrainer {
    dataset: Arc<ClassificationDataset>,
    config: ParallelConfig,
    weights: Vec<f32>,
    analyzer: Analyzer,
    tracker: GnsTracker,
    loader: HeteroDataLoader,
    epoch: usize,
    last_split: Vec<u64>,
    model_factory: Arc<dyn Fn(u64) -> Sequential + Send + Sync>,
    monitor: Option<Monitor>,
}

impl ParallelTrainer {
    /// Create a trainer. `model_factory(seed)` must build identical
    /// architectures for identical seeds (replicas are initialized from
    /// rank 0's weights regardless).
    ///
    /// # Panics
    ///
    /// Panics if the config has no nodes or `base_batch` is smaller than
    /// the node count.
    pub fn new(
        dataset: ClassificationDataset,
        model_factory: impl Fn(u64) -> Sequential + Send + Sync + 'static,
        config: ParallelConfig,
    ) -> Self {
        let n = config.slowdowns.len();
        assert!(n > 0, "need at least one node");
        assert!(config.base_batch >= n as u64, "base batch must cover every node");
        let model = model_factory(config.seed);
        let weights = flatten_values(&model.parameters()).into_data();
        let loader = HeteroDataLoader::new(dataset.len(), config.seed);
        ParallelTrainer {
            dataset: Arc::new(dataset),
            analyzer: Analyzer::new(n, MeasurementAggregation::InverseVariance),
            tracker: GnsTracker::new(0.9),
            loader,
            epoch: 0,
            last_split: Vec::new(),
            weights,
            config,
            model_factory: Arc::new(model_factory),
            monitor: None,
        }
    }

    /// Attach an online [`Monitor`]: after every epoch the trainer drains
    /// its fresh anomalies, records a `health_anomalies` counter, and
    /// discards the compute-law observations of any rank flagged as a
    /// straggler so the next epochs re-profile it via the bootstrap path.
    pub fn attach_monitor(&mut self, monitor: Monitor) {
        self.monitor = Some(monitor);
    }

    /// The attached monitor's current health report, if one is installed.
    pub fn health(&self) -> Option<HealthReport> {
        self.monitor.as_ref().map(|m| m.report())
    }

    /// Smoothed gradient noise scale, if available.
    pub fn noise_scale(&self) -> Option<f64> {
        self.tracker.noise_scale()
    }

    /// The analyzer's current state (inspection/tests).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Run one epoch of real data-parallel training.
    pub fn run_epoch(&mut self) -> ParallelEpochReport {
        let _epoch_span = telemetry::span("epoch");
        let n = self.config.slowdowns.len();
        let phi = self.tracker.noise_scale();

        // ---- Plan the split (Fig. 4 control loop). ----
        let plan_span = telemetry::span("plan");
        let mut used_model = false;
        let mut predicted_t = None;
        let mut source = SplitSource::Bootstrap;
        let (total, local) = if let Ok(input) = self.analyzer.solver_input() {
            let mut solver = OptPerfSolver::new(input);
            let total = if self.config.adaptive {
                self.pick_total(&mut solver, phi)
            } else {
                self.config.base_batch
            };
            match solver.solve(total) {
                Ok(plan) => {
                    used_model = true;
                    source = SplitSource::Solver;
                    predicted_t = Some(plan.opt_perf);
                    (total, plan.local_batches)
                }
                Err(_) => {
                    source = SplitSource::EvenInit;
                    (self.config.base_batch, even_split(self.config.base_batch, n))
                }
            }
        } else if self.epoch == 0 || self.last_split.is_empty() {
            source = SplitSource::EvenInit;
            (self.config.base_batch, even_split(self.config.base_batch, n))
        } else {
            let t: Vec<f64> = (0..n).map(|i| self.analyzer.per_sample_time(i).unwrap_or(1.0)).collect();
            let split = bootstrap_split(&t, self.config.base_batch);
            (self.config.base_batch, ensure_distinct_split(&self.last_split, split))
        };
        drop(plan_span);
        if telemetry::enabled() {
            telemetry::emit(Event::SplitDecision(SplitDecision { total, local: local.clone(), predicted_t, source }));
        }

        // ---- Train the epoch across threads. ----
        // Even steps use the planned split, odd steps a ~25%-perturbed
        // variant: every node sees two well-separated local batch sizes
        // *within* the same epoch, so its linear compute model is fit
        // under identical thermal conditions (cross-epoch timing drift on
        // real threads would otherwise poison the slopes).
        let odd = measurement_variant(&local);
        let plan = self.loader.next_epoch_alternating(&local, &odd);
        let steps = plan.steps().max(1);
        let even_total: u64 = local.iter().sum();
        let odd_total: u64 = odd.iter().sum();
        let step_totals: Arc<Vec<u64>> =
            Arc::new((0..steps).map(|s| if s % 2 == 0 { even_total } else { odd_total }).collect());
        let lr = self.config.lr_scaler.scaled_lr(self.config.base_lr, self.config.base_batch, total, phi);
        // Each replica thread gets a proportional share of the kernel
        // thread budget so n replicas × blocked-matmul fan-out never
        // oversubscribes the machine.
        let kernel_threads = minidnn::tensor::threads::replica_share(n);
        let comms = CommGroup::create(n);
        let started = Instant::now();
        let mut handles = Vec::new();
        for (rank, comm) in comms.into_iter().enumerate() {
            let dataset = Arc::clone(&self.dataset);
            let factory = Arc::clone(&self.model_factory);
            let weights = self.weights.clone();
            let batches: Vec<Vec<usize>> = plan.node_batches(rank).to_vec();
            let step_totals = Arc::clone(&step_totals);
            let slowdown = self.config.slowdowns[rank];
            let seed = self.config.seed;
            handles.push(thread::spawn(move || {
                run_rank(RankArgs {
                    comm,
                    rank,
                    dataset,
                    factory,
                    weights,
                    batches,
                    step_totals,
                    slowdown,
                    lr,
                    seed,
                    steps,
                    kernel_threads,
                })
            }));
        }
        let mut rank_outputs: Vec<RankOutput> = handles
            .into_iter()
            .map(|h| h.join().expect("training rank panicked"))
            .collect();
        let epoch_time = started.elapsed().as_secs_f64();

        // ---- Absorb measurements (discarding thread warm-up steps:
        // freshly spawned ranks run their first batches with cold caches,
        // which would poison the linear fit). ----
        let warmup = if steps > 6 { 3 } else { 0 };
        for step in warmup..steps {
            let observations = rank_outputs
                .iter()
                .map(|r| {
                    let m = r.step_measurements[step];
                    NodeObservation {
                        node: r.rank,
                        local_batch: m.batch_size,
                        a_time: m.a_time,
                        p_time: m.p_time,
                        sync_start: m.a_time + 0.5 * m.p_time,
                        gamma_obs: 0.5,
                        t_comm_obs: m.comm_time,
                        t_u_obs: m.comm_time, // no overlap: T_u = T_comm, T_o = 0
                        rel_variance: 1e-4,
                    }
                })
                .collect();
            self.analyzer.observe_batch(&BatchTrace {
                observations,
                batch_time: 0.0,
                bucket_sync_end: Vec::new(),
            });
        }
        for est in &rank_outputs[0].gns_estimates {
            self.tracker.observe(*est);
        }
        self.apply_health(n);

        // ---- Evaluate and roll state forward. ----
        let rank0 = rank_outputs.swap_remove(0);
        self.weights = rank0.weights;
        let mean_loss = rank0.losses.iter().sum::<f64>() / rank0.losses.len().max(1) as f64;
        let mut eval_model = (self.model_factory)(self.config.seed);
        let flat = minidnn::tensor::Tensor::from_vec(self.weights.clone(), &[self.weights.len()]).expect("weights");
        minidnn::layers::assign_values(&mut eval_model.parameters_mut(), &flat);
        let accuracy = evaluate(&mut eval_model, &self.dataset);

        let report = ParallelEpochReport {
            epoch: self.epoch,
            total_batch: total,
            local_batches: local.clone(),
            epoch_time,
            mean_loss,
            accuracy,
            noise_scale: self.tracker.noise_scale(),
            used_model,
        };
        self.epoch += 1;
        self.last_split = local;
        report
    }

    /// End-of-epoch health pass. The rank threads have already joined (and
    /// flushed their telemetry buffers to the monitor on thread exit), so
    /// only the driver thread's buffer — holding this epoch's
    /// `SplitDecision` — still needs a flush before the verdicts are read.
    fn apply_health(&mut self, n: usize) {
        let Some(monitor) = &self.monitor else { return };
        telemetry::flush_thread();
        let fresh = monitor.drain_new();
        if fresh.is_empty() {
            return;
        }
        telemetry::counter("health_anomalies", fresh.len() as f64);
        let mut flagged: Vec<u32> = fresh
            .iter()
            .filter(|a| a.kind == AnomalyKind::Straggler)
            .filter_map(|a| a.node)
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        for node in flagged {
            if (node as usize) < n {
                self.analyzer.reset_node(node as usize);
            }
        }
    }

    /// Goodput-style total-batch pick over a tiny candidate grid (the
    /// functional datasets are small, so the full cache machinery of
    /// [`crate::goodput::GoodputEngine`] is unnecessary here).
    fn pick_total(&self, solver: &mut OptPerfSolver, phi: Option<f64>) -> u64 {
        let Some(phi) = phi else {
            return self.config.base_batch;
        };
        let n = self.config.slowdowns.len() as u64;
        let mut best = (self.config.base_batch, f64::MIN);
        let mut b = self.config.base_batch.max(n);
        while b <= self.config.max_batch && (b as usize) <= self.dataset.len() {
            if let Ok(plan) = solver.solve(b) {
                let g = crate::gns::goodput(phi, self.config.base_batch, b, plan.opt_perf);
                if g > best.1 {
                    best = (b, g);
                }
            }
            b *= 2;
        }
        best.0
    }
}

impl std::fmt::Debug for ParallelTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ParallelTrainer(epoch {}, {} nodes)", self.epoch, self.config.slowdowns.len())
    }
}

struct RankArgs {
    comm: cannikin_collectives::Communicator,
    rank: usize,
    dataset: Arc<ClassificationDataset>,
    factory: Arc<dyn Fn(u64) -> Sequential + Send + Sync>,
    weights: Vec<f32>,
    batches: Vec<Vec<usize>>,
    step_totals: Arc<Vec<u64>>,
    slowdown: f64,
    lr: f64,
    seed: u64,
    steps: usize,
    kernel_threads: usize,
}

#[derive(Debug, Clone, Copy)]
struct StepMeasurement {
    batch_size: u64,
    a_time: f64,
    p_time: f64,
    comm_time: f64,
}

struct RankOutput {
    rank: usize,
    weights: Vec<f32>,
    losses: Vec<f64>,
    gns_estimates: Vec<GnsEstimate>,
    step_measurements: Vec<StepMeasurement>,
}

/// A second split for within-epoch measurement: adjacent node pairs trade
/// ~25% of their smaller share (at least one sample), preserving the sum
/// and the one-sample floor while giving the linear fit real leverage.
fn measurement_variant(split: &[u64]) -> Vec<u64> {
    let mut out = split.to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        let d = (out[i].min(out[i + 1]) / 4).max(1);
        if out[i + 1] > d {
            out[i] += d;
            out[i + 1] -= d;
        } else if out[i] > d {
            out[i] -= d;
            out[i + 1] += d;
        }
        i += 2;
    }
    if out.len() % 2 == 1 && out.len() >= 3 {
        let last = out.len() - 1;
        let d = (out[last].min(out[0]) / 4).max(1);
        if out[last] > d {
            out[last] -= d;
            out[0] += d;
        } else if out[0] > d {
            out[0] -= d;
            out[last] += d;
        }
    }
    out
}

fn run_rank(args: RankArgs) -> RankOutput {
    let RankArgs {
        comm,
        rank,
        dataset,
        factory,
        weights,
        batches,
        step_totals,
        slowdown,
        lr,
        seed,
        steps,
        kernel_threads,
    } = args;
    // Cap this replica's matmul fan-out at its share of the budget for the
    // lifetime of the rank thread.
    let _budget = minidnn::tensor::threads::ThreadBudgetGuard::new(kernel_threads);
    // Every record this thread emits carries its rank, and step timings
    // carry the step index, so events from concurrently running replicas
    // can never be attributed to the wrong step when the drain interleaves
    // them by timestamp.
    let _identity = telemetry::set_thread_identity(rank as u32, rank as u32);
    let mut model = factory(seed);
    // Start from the shared weights so every replica is identical.
    let flat = minidnn::tensor::Tensor::from_vec(weights, &[model.parameters().iter().map(|p| p.len()).sum()])
        .expect("weight vector");
    minidnn::layers::assign_values(&mut model.parameters_mut(), &flat);
    let mut opt = Sgd::new(lr).momentum(0.9);

    let mut losses = Vec::with_capacity(steps);
    let mut gns_estimates = Vec::with_capacity(steps);
    let mut measurements = Vec::with_capacity(steps);
    // Flat gradient buffer reused across every step of the epoch.
    let mut g: Vec<f32> = Vec::with_capacity(flat.len());
    for (step, batch_indices) in batches.iter().take(steps).enumerate() {
        let _step_span = telemetry::span("step");
        let ratio = batch_indices.len() as f64 / step_totals[step] as f64;
        // Forward (+ data load) — the `a_i` phase.
        let t0 = Instant::now();
        let (x, y) = dataset.batch(batch_indices);
        let logits = model.forward(&x, true);
        let (loss, grad) = SoftmaxCrossEntropy.loss(&logits, &y);
        let a_elapsed = t0.elapsed().as_secs_f64();

        // Backward — the `P_i` phase.
        let t1 = Instant::now();
        zero_grads(&mut model.parameters_mut());
        model.backward(&grad);
        let p_elapsed = t1.elapsed().as_secs_f64();

        // Emulate a slower GPU: stretch this node's compute wall time.
        if slowdown > 1.0 {
            let extra = (a_elapsed + p_elapsed) * (slowdown - 1.0);
            thread::sleep(Duration::from_secs_f64(extra));
        }

        // Gradient exchange: Eq. (9) weighted aggregation + GNS inputs.
        flatten_grads_into(&model.parameters(), &mut g);
        let local_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let t2 = Instant::now();
        comm.weighted_all_reduce(&mut g, ratio as f32);
        let comm_time = t2.elapsed().as_secs_f64();
        let global_sq: f64 = g.iter().map(|&v| f64::from(v) * f64::from(v)).sum();

        // Gather (bᵢ, |gᵢ|²) from every rank for Eq. (10).
        let rows = comm.all_gather_vec(&[batch_indices.len() as f64, local_sq]);
        if rank == 0 {
            let samples: Vec<GradientSample> = rows
                .iter()
                .map(|r| GradientSample { local_batch: r[0] as u64, local_sq_norm: r[1] })
                .collect();
            if let Ok(est) = estimate_gns(&samples, global_sq, Aggregation::MinimumVariance) {
                gns_estimates.push(est);
            }
        }

        // Apply the identical global gradient on every replica.
        assign_grads_from(&mut model.parameters_mut(), &g);
        opt.step(&mut model.parameters_mut());

        losses.push(f64::from(loss));
        if telemetry::enabled() {
            telemetry::emit(Event::StepTiming(StepTiming {
                step: step as u64,
                rank: rank as u32,
                b_i: batch_indices.len() as u64,
                t_compute: (a_elapsed + p_elapsed) * slowdown,
                t_comm: comm_time,
                overlap: 0.0, // functional path synchronizes after backward
            }));
        }
        measurements.push(StepMeasurement {
            batch_size: batch_indices.len() as u64,
            a_time: a_elapsed * slowdown,
            p_time: p_elapsed * slowdown,
            comm_time,
        });
    }
    RankOutput {
        rank,
        weights: flatten_values(&model.parameters()).into_data(),
        losses,
        gns_estimates,
        step_measurements: measurements,
    }
}

fn evaluate(model: &mut Sequential, dataset: &ClassificationDataset) -> f64 {
    let sample: Vec<usize> = (0..dataset.len().min(512)).collect();
    let (x, y) = dataset.batch(&sample);
    minidnn::models::accuracy(model, &x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidnn::data::gaussian_blobs;
    use minidnn::models::mlp_classifier;

    fn config(adaptive: bool) -> ParallelConfig {
        ParallelConfig {
            slowdowns: vec![1.0, 2.0],
            base_batch: 32,
            max_batch: 128,
            adaptive,
            base_lr: 0.05,
            lr_scaler: LrScaler::AdaScale,
            seed: 5,
        }
    }

    fn trainer(adaptive: bool) -> ParallelTrainer {
        let ds = gaussian_blobs(640, 4, 10, 3);
        ParallelTrainer::new(ds, |seed| mlp_classifier(10, 24, 4, seed), config(adaptive))
    }

    #[test]
    fn replicas_learn_the_task() {
        let mut t = trainer(false);
        let mut last = None;
        for _ in 0..4 {
            last = Some(t.run_epoch());
        }
        let report = last.unwrap();
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.mean_loss < 0.5, "loss {}", report.mean_loss);
    }

    #[test]
    fn gns_becomes_available() {
        let mut t = trainer(false);
        let r = t.run_epoch();
        assert!(r.noise_scale.is_some(), "GNS should be estimable after one epoch");
        assert!(r.noise_scale.unwrap() > 0.0);
    }

    #[test]
    fn split_adapts_to_slowdown() {
        // Thread timings on loaded CI machines are noisy, so judge the
        // *cumulative* allocation over several post-bootstrap epochs
        // rather than a single epoch's split.
        let mut t = trainer(false);
        let mut fast_total = 0u64;
        let mut slow_total = 0u64;
        let mut model_epochs = 0;
        for epoch in 0..6 {
            let r = t.run_epoch();
            if epoch >= 2 {
                fast_total += r.local_batches[0];
                slow_total += r.local_batches[1];
                model_epochs += usize::from(r.used_model);
            }
        }
        assert!(
            fast_total > slow_total,
            "the 1x node should receive more work overall: {fast_total} vs {slow_total}"
        );
        assert!(model_epochs >= 1, "the learned model should engage at least once");
    }

    #[test]
    fn losses_decrease_over_epochs() {
        let mut t = trainer(false);
        let first = t.run_epoch();
        let mut last = t.run_epoch();
        for _ in 0..2 {
            last = t.run_epoch();
        }
        assert!(last.mean_loss < first.mean_loss, "{} -> {}", first.mean_loss, last.mean_loss);
    }
}
