//! Training engines.
//!
//! Two engines share the control logic of Fig. 4:
//!
//! - [`CannikinTrainer`] drives a [`hetsim::Simulator`] at paper scale
//!   (16-GPU clusters, ImageNet-sized jobs): batch timings come from the
//!   simulator, gradient-noise evolution from a pluggable [`NoiseModel`].
//! - [`parallel::ParallelTrainer`] trains *real* `minidnn` models on OS
//!   threads with ring all-reduce gradient exchange, Eq. (9) weighted
//!   aggregation and live Theorem 4.1 GNS estimation — the functional
//!   path that proves the algorithms work on real gradients, not only on
//!   simulated clocks.
//!
//! Both produce [`EpochRecord`]s, the unit every figure harness consumes.

mod builders;
pub mod loader;
pub mod parallel;
mod subject;
mod trainer;

pub use builders::{CannikinTrainerBuilder, ParallelTrainerBuilder};
pub use loader::HeteroDataLoader;
pub use parallel::{ParallelConfig, ParallelEpochReport, ParallelTrainer};
pub use subject::TrainingSubject;
pub use trainer::{CannikinTrainer, TrainerConfig};

use crate::optperf::Bottleneck;
use serde::{Deserialize, Serialize};

/// A model of how the gradient noise scale evolves with training progress.
///
/// Progress is measured in *effective epochs*: statistically-weighted
/// passes over the dataset (an epoch at the reference batch size counts as
/// 1.0). The GNS famously grows as training converges — McCandlish et al.
/// report one to two orders of magnitude over a run — which is exactly why
/// adaptive systems grow the batch size over time.
pub trait NoiseModel: Send {
    /// The gradient noise scale φ after `effective_epochs` of progress.
    fn noise_scale(&self, effective_epochs: f64) -> f64;
}

/// φ(t) = φ₀ · (1 + rate·t): the linear-growth model used by the workload
/// profiles (a good fit to the published GNS trajectories at epoch
/// granularity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearNoiseGrowth {
    /// Initial noise scale.
    pub initial: f64,
    /// Growth per effective epoch.
    pub rate: f64,
}

impl NoiseModel for LinearNoiseGrowth {
    fn noise_scale(&self, effective_epochs: f64) -> f64 {
        self.initial * (1.0 + self.rate * effective_epochs.max(0.0))
    }
}

/// Everything recorded about one training epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Total batch size used this epoch.
    pub total_batch: u64,
    /// Per-node local batch sizes.
    pub local_batches: Vec<u64>,
    /// Number of optimizer steps (batches) in the epoch.
    pub steps: usize,
    /// Gradient-accumulation factor (micro-steps per optimizer step;
    /// 1 = plain synchronous training).
    pub accumulation: u64,
    /// Simulated (or measured) wall time of the epoch, s.
    pub epoch_time: f64,
    /// Mean batch processing time, s.
    pub mean_batch_time: f64,
    /// Gradient noise scale in effect during the epoch.
    pub noise_scale: f64,
    /// Statistical efficiency η(B) relative to the reference batch.
    pub efficiency: f64,
    /// Cumulative effective epochs of progress *after* this epoch.
    pub effective_epochs: f64,
    /// Cumulative wall time after this epoch, s.
    pub cumulative_time: f64,
    /// Real wall-clock time spent in the optimizer for this epoch —
    /// split planning *plus* performance-model fitting (the Table 6
    /// overhead), s.
    pub overhead_seconds: f64,
    /// Bottleneck pattern of the plan, when a model-based plan was used.
    pub pattern: Option<Vec<Bottleneck>>,
    /// Whether the learned model (vs the bootstrap) produced the split.
    pub used_model: bool,
    /// Faults observed (injected or genuine) during the epoch.
    #[serde(default)]
    pub faults: u32,
    /// Recovery actions taken (retries, group membership changes,
    /// mid-epoch replans) during the epoch.
    #[serde(default)]
    pub recoveries: u32,
}

impl EpochRecord {
    /// Overhead as a fraction of the epoch's total time (Table 6).
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_seconds / (self.overhead_seconds + self.epoch_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_noise_growth() {
        let m = LinearNoiseGrowth { initial: 100.0, rate: 0.5 };
        assert_eq!(m.noise_scale(0.0), 100.0);
        assert_eq!(m.noise_scale(2.0), 200.0);
        // Negative progress clamps.
        assert_eq!(m.noise_scale(-5.0), 100.0);
    }

    #[test]
    fn overhead_fraction() {
        let r = EpochRecord {
            epoch: 0,
            total_batch: 64,
            local_batches: vec![64],
            steps: 1,
            accumulation: 1,
            epoch_time: 9.0,
            mean_batch_time: 9.0,
            noise_scale: 1.0,
            efficiency: 1.0,
            effective_epochs: 1.0,
            cumulative_time: 9.0,
            overhead_seconds: 1.0,
            pattern: None,
            used_model: false,
            faults: 0,
            recoveries: 0,
        };
        assert!((r.overhead_fraction() - 0.1).abs() < 1e-12);
    }
}
