//! Multi-job scheduling over a shared heterogeneous pool (§6).
//!
//! ```text
//! cargo run --release --example multi_job
//! ```
//!
//! A short CIFAR-10 job and a long ImageNet job split an 8-GPU pool
//! (2×A100 + 2×V100 + 4×RTX6000). Each job runs its own full Cannikin
//! stack on whatever mix it holds. When the CIFAR job hits its target,
//! the scheduler grants its nodes to the ImageNet job, which absorbs them
//! through elastic membership and finishes well ahead of a static
//! allocation.

use cannikin::core::engine::{LinearNoiseGrowth, NoiseModel, TrainerConfig};
use cannikin::core::sched::MultiJobScheduler;
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::NodeSpec;
use cannikin::sim::job::JobSpec;

fn nodes(gpus: &[(Gpu, usize)]) -> Vec<NodeSpec> {
    let mut out = Vec::new();
    for (gpu, count) in gpus {
        for i in 0..*count {
            out.push(NodeSpec::new(format!("{gpu}-{i}"), *gpu));
        }
    }
    out
}

fn noise() -> Box<dyn NoiseModel> {
    Box::new(LinearNoiseGrowth { initial: 400.0, rate: 0.5 })
}

fn main() {
    let mut shared = MultiJobScheduler::new();
    shared.submit(
        "cifar-short",
        JobSpec::resnet18_cifar10(),
        nodes(&[(Gpu::A100, 2), (Gpu::Rtx6000, 2)]),
        noise(),
        TrainerConfig::new(20_000, 64, 512),
        4.0,
        1,
    );
    shared.submit(
        "imagenet-long",
        JobSpec::resnet50_imagenet(),
        nodes(&[(Gpu::V100, 2), (Gpu::Rtx6000, 2)]),
        noise(),
        TrainerConfig::new(80_000, 64, 512),
        12.0,
        2,
    );
    let summaries = shared.run_to_completion(4000).expect("jobs completed");

    println!("shared 8-GPU pool:");
    for s in &summaries {
        println!("  {:<16} done at {:>7.1}s after {:>2} epochs on {} final nodes", s.name, s.completion_time, s.epochs, s.final_nodes);
    }

    println!("\nimagenet epoch timeline (B / nodes / cumulative time):");
    let long = &shared.jobs()[1];
    for r in long.records() {
        let marker = if r.local_batches.len() > 4 { "  <- pool grant absorbed" } else { "" };
        println!(
            "  e{:<2} B={:<4} nodes={} t={:>7.1}s{}",
            r.epoch,
            r.total_batch,
            r.local_batches.len(),
            r.cumulative_time,
            marker
        );
    }

    // Static baseline for comparison.
    let mut solo = MultiJobScheduler::new();
    solo.submit(
        "imagenet-static",
        JobSpec::resnet50_imagenet(),
        nodes(&[(Gpu::V100, 2), (Gpu::Rtx6000, 2)]),
        noise(),
        TrainerConfig::new(80_000, 64, 512),
        12.0,
        2,
    );
    let solo_summary = &solo.run_to_completion(4000).expect("completed")[0];
    let long_summary = &summaries[1];
    println!(
        "\nstatic 4-node allocation would take {:.1}s — the freed nodes save {:.0}%",
        solo_summary.completion_time,
        (1.0 - long_summary.completion_time / solo_summary.completion_time) * 100.0
    );
}
