//! Property-based tests of the full control loop on randomized clusters
//! and jobs: whatever the hardware mix, the engine must stay within its
//! invariants and end up no worse than the even split.

use cannikin::core::engine::{CannikinTrainer, LinearNoiseGrowth, TrainerConfig};
use cannikin::core::optperf::even_split;
use cannikin::sim::catalog::Gpu;
use cannikin::sim::cluster::{ClusterSpec, NodeSpec};
use cannikin::sim::job::JobSpec;
use cannikin::sim::Simulator;
use proptest::prelude::*;

fn arbitrary_cluster() -> impl Strategy<Value = ClusterSpec> {
    let gpu = prop_oneof![
        Just(Gpu::A100),
        Just(Gpu::V100),
        Just(Gpu::Rtx6000),
        Just(Gpu::RtxA5000),
        Just(Gpu::RtxA4000),
    ];
    let node = (gpu, 0.4f64..1.0, 0.5f64..2.0).prop_map(|(gpu, fraction, cpu)| {
        NodeSpec::new("node", gpu).with_contention(fraction).with_cpu_factor(cpu)
    });
    proptest::collection::vec(node, 2..6).prop_map(|nodes| ClusterSpec::new("prop", nodes))
}

fn arbitrary_job() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        Just(JobSpec::resnet50_imagenet()),
        Just(JobSpec::resnet18_cifar10()),
        Just(JobSpec::neumf_movielens()),
    ]
}

proptest! {
    // Each case runs several simulated epochs; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_invariants_on_random_clusters(
        cluster in arbitrary_cluster(),
        job in arbitrary_job(),
        seed in 0u64..1000,
        phi0 in 50.0f64..2000.0,
    ) {
        let n = cluster.len();
        let base = 16 * n as u64;
        let sim = Simulator::new(cluster, job, seed);
        let noise = Box::new(LinearNoiseGrowth { initial: phi0, rate: 0.5 });
        let config = TrainerConfig::new(base as usize * 40, base, base * 16);
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .noise_boxed(noise)
            .config(config)
            .build()
            .expect("valid config");
        let records = trainer.run_epochs(6).expect("run");
        for r in &records {
            prop_assert_eq!(r.local_batches.len(), n);
            prop_assert_eq!(
                r.local_batches.iter().sum::<u64>() * r.accumulation,
                r.total_batch,
                "micro split × accumulation must equal the effective batch"
            );
            prop_assert!(r.local_batches.iter().all(|&b| b >= 1));
            prop_assert!(r.epoch_time.is_finite() && r.epoch_time > 0.0);
            prop_assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-12);
        }
        for pair in records.windows(2) {
            prop_assert!(pair[1].effective_epochs > pair[0].effective_epochs);
        }
        // The model path must engage by epoch 2 on a clean simulator.
        prop_assert!(records[2].used_model || records[3].used_model);
    }

    #[test]
    fn fixed_batch_engine_never_loses_to_even_split(
        cluster in arbitrary_cluster(),
        seed in 0u64..1000,
    ) {
        let n = cluster.len();
        let job = JobSpec::resnet50_imagenet();
        let total = 32 * n as u64;
        let oracle = Simulator::new(cluster.clone(), job.clone(), 0).with_noise(0.0, 0.0);
        let even_time = oracle.ideal_batch_time(&even_split(total, n));

        let sim = Simulator::new(cluster, job, seed);
        let noise = Box::new(LinearNoiseGrowth { initial: 300.0, rate: 0.5 });
        let mut config = TrainerConfig::new(total as usize * 30, total, total);
        config.adaptive_batch = false;
        let mut trainer = CannikinTrainer::builder()
            .simulator(sim)
            .noise_boxed(noise)
            .config(config)
            .build()
            .expect("valid config");
        let records = trainer.run_epochs(5).expect("run");
        let tuned = records.last().unwrap();
        let ideal_tuned = oracle.ideal_batch_time(&tuned.local_batches);
        // The learned split can never be materially worse than even.
        prop_assert!(
            ideal_tuned <= even_time * 1.02,
            "tuned split {:?} at {ideal_tuned} vs even {even_time}",
            tuned.local_batches
        );
    }
}
