//! # cannikin-collectives — pluggable collective communication
//!
//! Functional (numerically real) collectives for data-parallel training,
//! mirroring the subset of NCCL that PyTorch DistributedDataParallel uses.
//! Every collective is written once against the [`Transport`] trait and
//! runs unchanged over either in-tree backend — crossbeam channels between
//! OS threads ([`CommGroup::create`]) or real localhost TCP sockets with
//! length-prefixed frames ([`CommGroup::tcp`]); results are bitwise
//! identical across backends. Available collectives:
//!
//! - [`Communicator::all_reduce_sum`] — the bandwidth-optimal ring
//!   all-reduce (reduce-scatter followed by all-gather, `2(n−1)` chunk
//!   transfers per rank);
//! - [`Communicator::all_reduce_buckets`] — the bucketed variant that DDP
//!   uses to overlap gradient synchronization with backpropagation (§3.2.3
//!   of the paper); buckets are reduced in backward order;
//! - [`Communicator::weighted_all_reduce`] — the batch-ratio-weighted
//!   gradient aggregation of Eq. (9): `g = Σᵢ rᵢ gᵢ`;
//! - broadcast / barrier / all-gather primitives for bootstrapping and
//!   metric collection;
//! - [`Communicator::all_reduce_sum_resilient`] and
//!   [`Communicator::weighted_all_reduce_resilient`] — the fault-tolerant
//!   path: per-receive timeouts, typed [`CommError`]s instead of panics,
//!   and bounded retry with seeded-jitter exponential backoff
//!   ([`RetryPolicy`]). Deterministic failures can be injected with a
//!   shared [`CommFaultPlan`] (see [`CommGroup::create_faulty`]).
//! - [`Communicator::weighted_all_reduce_ef`] and its resilient variant —
//!   the compressed-gradient path: payloads travel through a per-group
//!   [`Codec`] (bf16 / f16 quantization or top-k sparsification, raw
//!   `f32` by default) with an [`ErrorFeedback`] residual so convergence
//!   tracks the uncompressed trajectory. Select the codec with
//!   [`CommGroup::with_options`].
//!
//! Every rank runs on its own thread and owns one [`Communicator`]; the
//! group is created up front with [`CommGroup::create`] (in-process),
//! [`CommGroup::tcp`] (sockets), or the backend-polymorphic
//! [`CommGroup::with_kind`] driven by a [`TransportKind`]. All collectives
//! must be called by every rank in the same order (the usual SPMD
//! contract).
//!
//! ## Example
//!
//! ```
//! use cannikin_collectives::CommGroup;
//! use std::thread;
//!
//! let comms = CommGroup::create(3);
//! let handles: Vec<_> = comms
//!     .into_iter()
//!     .map(|comm| {
//!         thread::spawn(move || {
//!             let mut data = vec![(comm.rank() + 1) as f32; 4];
//!             comm.all_reduce_sum(&mut data);
//!             data
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap(), vec![6.0; 4]); // 1 + 2 + 3
//! }
//! ```

pub mod codec;
mod resilience;
mod ring;
pub mod tcp;
pub mod transport;

pub use codec::{Codec, ErrorFeedback, ParseCodecError};
pub use resilience::{CommError, CommFaultPlan, RetryPolicy};
pub use ring::{CommGroup, Communicator};
pub use tcp::{Rendezvous, TcpTransport};
pub use transport::{InProcessTransport, Transport, TransportKind};

/// Partition `total` gradient elements into `buckets` contiguous bucket
/// ranges, mirroring DDP's fixed-capacity gradient buckets. The last bucket
/// absorbs the remainder, so bucket sizes differ by at most `total %
/// buckets`.
///
/// # Panics
///
/// Panics if `buckets == 0`.
///
/// # Examples
///
/// ```
/// let ranges = cannikin_collectives::bucket_ranges(10, 3);
/// assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
/// ```
pub fn bucket_ranges(total: usize, buckets: usize) -> Vec<std::ops::Range<usize>> {
    assert!(buckets > 0, "bucket count must be positive");
    let buckets = buckets.min(total.max(1));
    let base = total / buckets;
    let mut out = Vec::with_capacity(buckets);
    let mut start = 0;
    for b in 0..buckets {
        let end = if b + 1 == buckets { total } else { start + base };
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 100, 1023] {
            for buckets in [1usize, 2, 3, 25] {
                let ranges = bucket_ranges(total, buckets);
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                assert_eq!(cursor, total, "total {total} buckets {buckets}");
            }
        }
    }

    #[test]
    fn bucket_count_never_exceeds_elements() {
        let ranges = bucket_ranges(2, 10);
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_rejected() {
        let _ = bucket_ranges(10, 0);
    }
}
